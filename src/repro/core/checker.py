"""The local model checker (LMC): Fig. 9's ``findBugs`` as a library.

The checker keeps, per node, the set ``LS_n`` of traversed local states and
one shared monotonic network ``I+``.  Exploration proceeds in rounds: every
stored message is executed on the destination node's states it has not seen
yet (the per-message cursor), and every node state executes its enabled
internal actions once.  New node states trigger temporary system-state
creation anchored at them; invariant violations on those states are
*preliminary* until soundness verification finds a valid total order of the
participating event sequences — only then is a bug reported, with the found
order as its witness trace.

Modes (§5):

* **LMC-GEN** — general system-state creation (full anchored product);
* **LMC-OPT** — invariant-specific creation via the invariant's local
  projections (``LMCConfig.optimized()``), the variant that finishes the
  single-proposal Paxos space in milliseconds;
* phase toggles reproduce the Fig. 13 configurations **LMC-explore**
  (``create_system_states=False``) and **LMC-system-state**
  (``verify_soundness=False``).

With ``LMCConfig.fault_events_enabled`` the round additionally runs a
**fault scheduler** (docs/FAULTS.md): every eligible node state is crashed
(producing a :class:`~repro.model.types.CrashedState` marker record that
executes no further events and joins no system state) and every crashed
record is restarted from its durable fragment.  The monotonic ``I+`` makes
this composition cheap — a crashed node's in-flight messages stay available
by construction.  Off by default, and when off the checker is byte-identical
to a build without the scheduler.

Three further fault dimensions compose the same way (docs/FAULTS.md), each
off by default and byte-identical-off:

* ``drop_faults`` — a **drop sweep** offers every undelivered stored copy
  to each destination record whose protocol declares a ``handle_drop``
  timeout hook; the resulting :class:`~repro.model.events.DropEvent`
  consumes the copy, so it is never-deliverable along that branch.
* ``duplicate_faults`` — a **duplication sweep** re-admits each generated
  message once through the network's ``duplicate_limit`` path; deliveries
  of the fault-minted copy bypass the §4.2 at-most-once history skip and
  integrate as :class:`~repro.model.events.DuplicateEvent` steps.
* ``partition_schedules`` — timed src/dest reachability masks applied in
  the delivery sweep: a blocked (message, destination) pair is counted as
  ``partition_blocks`` and retried once its window closes; a pair under a
  permanent window is simply never delivered.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.checkpoint import (
    Checkpointer,
    CheckpointMismatch,
    apply_stats,
    decode_initial_system,
    restore_pass,
    snapshot_pass,
    verify_fingerprint,
)
from repro.core.config import LMCConfig
from repro.core.explore_parallel import RoundSpeculator, SpecExec
from repro.core.records import (
    LINK_BYTES,
    LocalStateSpace,
    NodeStateRecord,
    PredecessorLink,
)
from repro.core.soundness import SoundnessVerifier
from repro.core.symmetry import SymmetryReducer
from repro.core.system_states import (
    Combination,
    ProjectionIndex,
    combination_to_system_state,
    enumerate_general,
    enumerate_optimized,
)
from repro.explore.budget import BudgetClock, SearchBudget
from repro.invariants.base import DecomposableInvariant, Invariant, LocalInvariant
from repro.model.events import (
    CrashEvent,
    DeliveryEvent,
    DropEvent,
    DuplicateEvent,
    Event,
    InternalEvent,
    RestartEvent,
    event_hash,
    message_hashes,
)
from repro.model.hashing import content_hash, intern_stats, interning_enabled
from repro.model.protocol import Protocol
from repro.model.system_state import SystemState
from repro.model.types import (
    Action,
    CrashedState,
    HandlerResult,
    LocalAssertionError,
    NodeId,
)
from repro.protocols.common import (
    declared_action_names,
    declared_message_types,
    drop_result,
    durable_projection,
    restart_state,
)
from repro.network.monotonic import MonotonicNetwork, StoredMessage
from repro.obs.coverage import NULL_COVERAGE, CoverageTracker
from repro.obs.emitter import NULL_EMITTER, TraceEmitter
from repro.obs.metrics import RunMetrics
from repro.obs.progress import estimate_progress
from repro.obs.registry import RunHandle
from repro.persistence import bug_from_dict
from repro.reports import BugReport, CheckResult
from repro.stats.counters import ExplorationStats
from repro.stats.series import DepthSeries

#: How many handler executions between wall-clock budget checks.
_BUDGET_CHECK_INTERVAL = 256


class _StopSearch(Exception):
    """Internal control flow: a stop criterion fired mid-exploration."""

    def __init__(self, reason: str, completed: bool):
        super().__init__(reason)
        self.reason = reason
        self.completed = completed


class LocalModelChecker:
    """Local model checking with a-posteriori soundness verification."""

    def __init__(
        self,
        protocol: Protocol,
        invariant: Invariant,
        budget: SearchBudget = SearchBudget.unbounded(),
        config: LMCConfig = LMCConfig(),
        emitter: Optional[TraceEmitter] = None,
        metrics_interval: Optional[float] = None,
        run_handle: Optional[RunHandle] = None,
        coverage: Optional[CoverageTracker] = None,
        checkpointer: Optional[Checkpointer] = None,
    ):
        self.protocol = protocol
        self.invariant = invariant
        self.budget = budget
        self.config = config
        #: Trace sink (docs/OBSERVABILITY.md); ``None`` selects the shared
        #: zero-overhead null emitter.
        self.emitter = emitter if emitter is not None else NULL_EMITTER
        #: Wall-clock cadence (seconds) for trace metric samples while the
        #: explored depth is flat; ``None`` samples only on depth growth.
        self.metrics_interval = metrics_interval
        #: Run-registry handle for cross-process heartbeats ("Live
        #: operations" in docs/OBSERVABILITY.md); ``None`` disables them.
        #: A plain attribute: harnesses that build the checker indirectly
        #: (tools/bench.py) can set it after construction.
        self.run_handle = run_handle
        #: Coverage tracker (:mod:`repro.obs.coverage`); ``None`` selects
        #: the shared zero-overhead null tracker.
        self.coverage = coverage if coverage is not None else NULL_COVERAGE
        #: Durable-snapshot policy (docs/CHECKPOINTS.md); ``None`` — the
        #: default — writes nothing and leaves the checker byte-identical
        #: to a build without the checkpoint layer.
        self.checkpointer = checkpointer
        self.algorithm = (
            "LMC-OPT"
            if config.invariant_specific_creation
            and isinstance(invariant, DecomposableInvariant)
            else "LMC-GEN"
        )

    # -- public API ------------------------------------------------------------

    def coverage_report(self) -> Dict[str, object]:
        """JSON-ready coverage counters against the protocol's declared universe.

        Meaningful only when the checker was given an enabled
        :class:`~repro.obs.coverage.CoverageTracker`; with the null tracker
        all counts are empty.  Accumulates across widened passes — the
        tracker lives on the checker, not the pass.
        """
        return self.coverage.as_dict(
            declared_messages=declared_message_types(self.protocol),
            declared_actions=declared_action_names(self.protocol),
        )

    def run(self, initial_system: Optional[SystemState] = None) -> CheckResult:
        """Explore from ``initial_system`` (default: protocol initial state).

        With a local-event bound configured, bounded passes restart from
        scratch with widened bounds (§4.2 "Local events") until the budget is
        spent, a bug is found, or widening stops helping.  Statistics
        accumulate across passes; the depth series comes from the last pass.
        """
        if initial_system is None:
            initial_system = self.protocol.initial_system_state()
        clock = BudgetClock(self.budget)
        total_stats = ExplorationStats()
        result = CheckResult(
            algorithm=self.algorithm, completed=False, stats=total_stats
        )
        run_pass = _ExplorationPass(
            self, initial_system, clock, self.config.local_event_bound
        )
        return self._run_loop(total_stats, result, run_pass)

    def resume(self, payload: Dict[str, object]) -> CheckResult:
        """Continue a checkpointed run to its original budget.

        ``payload`` is a checkpoint loaded by
        :func:`repro.core.checkpoint.load_checkpoint`.  The configuration
        fingerprint and the deterministic budget bounds (``max_depth``,
        ``max_transitions``, ``max_states``) must match the checkpoint —
        mismatches raise :class:`CheckpointMismatch` instead of silently
        exploring a different space.  ``max_seconds`` may differ: granting a
        killed run more wall clock is the point of resuming; the budget
        clock is pre-aged by the checkpointed elapsed time either way.

        Checkpoints are written at round boundaries and the round sweep is
        deterministic, so a resumed run finishes with counters identical to
        the uninterrupted run's (rebuildable caches excepted — see
        docs/CHECKPOINTS.md).
        """
        saved = payload["budget"]
        for name in ("max_depth", "max_transitions", "max_states"):
            if getattr(self.budget, name) != saved[name]:
                raise CheckpointMismatch(
                    f"resume requires the checkpointed budget: {name} was "
                    f"{saved[name]!r}, this run has "
                    f"{getattr(self.budget, name)!r}"
                )
        total_stats, result, run_pass = self._restore(payload)
        return self._run_loop(total_stats, result, run_pass)

    def extend_depth(self, payload: Dict[str, object]) -> CheckResult:
        """Explore only the frontier a larger depth bound unblocks.

        ``payload`` must snapshot a *completed* depth-bounded pass; this
        checker's budget carries the new, strictly larger (or removed)
        ``max_depth``.  The restored pass re-offers exactly the deferred
        (message, record) and (node, record) pairs the old bound blocked —
        the incremental half of docs/CHECKPOINTS.md — instead of
        re-executing the paid-for prefix.
        """
        if not payload.get("pass_completed"):
            raise CheckpointMismatch(
                "depth extension requires a checkpoint of a completed pass "
                f"(this one stopped mid-pass: {payload.get('reason')!r}); "
                "resume() continues an interrupted run"
            )
        saved = payload["budget"]
        if saved["max_depth"] is None:
            raise CheckpointMismatch(
                "the checkpointed run was not depth-bounded; nothing to extend"
            )
        new_depth = self.budget.max_depth
        if new_depth is not None and new_depth <= saved["max_depth"]:
            raise CheckpointMismatch(
                f"extension depth must exceed the checkpointed bound "
                f"{saved['max_depth']} (got {new_depth})"
            )
        for name in ("max_transitions", "max_states"):
            if getattr(self.budget, name) != saved[name]:
                raise CheckpointMismatch(
                    f"depth extension must keep the checkpointed {name} "
                    f"({saved[name]!r}); this run has "
                    f"{getattr(self.budget, name)!r}"
                )
        total_stats, result, run_pass = self._restore(payload)
        run_pass._reoffer = True
        # The old bound's blockage is stale under the new bound; the pass
        # re-learns it from whatever the *new* bound defers.
        run_pass._blocked_by_depth = False
        return self._run_loop(total_stats, result, run_pass)

    def _restore(self, payload: Dict[str, object]):
        """Rebuild run-level state and the in-flight pass from a checkpoint."""
        initial_system, registry = decode_initial_system(payload, self.protocol)
        verify_fingerprint(
            payload, self.protocol, self.invariant, self.config, initial_system
        )
        clock = BudgetClock(self.budget, already_elapsed=payload["elapsed_s"])
        total_stats = ExplorationStats()
        apply_stats(total_stats, payload["run"]["prior_stats"])
        result = CheckResult(
            algorithm=self.algorithm, completed=False, stats=total_stats
        )
        result.bugs.extend(
            bug_from_dict(item, registry) for item in payload["run"]["prior_bugs"]
        )
        run_pass = _ExplorationPass(
            self, initial_system, clock, payload["run"]["bound"]
        )
        restore_pass(run_pass, payload, registry)
        return total_stats, result, run_pass

    def _run_loop(
        self,
        total_stats: ExplorationStats,
        result: CheckResult,
        run_pass: "_ExplorationPass",
    ) -> CheckResult:
        """The widening pass loop, shared by run/resume/extend.

        ``run_pass`` is the first pass to execute — freshly seeded for
        :meth:`run`, checkpoint-restored for :meth:`resume` and
        :meth:`extend_depth`.  The attached checkpointer's SIGTERM handler
        is installed around the whole loop (cooperative: the flag is
        checked at round boundaries, where a snapshot is always safe).
        """
        checkpointer = self.checkpointer
        if checkpointer is not None:
            checkpointer.install()
        try:
            while True:
                # During a pass, ``total_stats``/``result.bugs`` hold exactly
                # the earlier passes' counters and bugs (merge/extend happen
                # below, after execute returns), which is what a mid-pass
                # checkpoint must record as run-level context.
                run_pass.prior_stats = total_stats
                run_pass.prior_bugs = result.bugs
                bound = run_pass.local_event_bound
                with self.emitter.span(
                    "pass", algorithm=self.algorithm, local_event_bound=bound
                ) as pass_span:
                    pass_outcome = run_pass.execute()
                    pass_span.add(
                        stop_reason=pass_outcome.reason,
                        transitions=run_pass.stats.transitions,
                    )
                total_stats.merge(run_pass.stats)
                result.bugs.extend(run_pass.bugs)
                result.series = run_pass.series
                if pass_outcome.stopped:
                    result.completed = pass_outcome.completed
                    result.stop_reason = pass_outcome.reason
                    return result
                # The pass saturated within its bound.
                if (
                    bound is None
                    or not run_pass.blocked_by_bound
                    or self.config.widen_increment == 0
                ):
                    result.completed = True
                    result.stop_reason = pass_outcome.reason
                    return result
                run_pass = _ExplorationPass(
                    self,
                    run_pass.initial_system,
                    run_pass.clock,
                    bound + self.config.widen_increment,
                )
        finally:
            if checkpointer is not None:
                checkpointer.uninstall()


class _PassOutcome:
    """How an exploration pass ended."""

    __slots__ = ("stopped", "completed", "reason")

    def __init__(self, stopped: bool, completed: bool, reason: str):
        self.stopped = stopped
        self.completed = completed
        self.reason = reason


class _ExplorationPass:
    """One from-scratch exploration under a fixed local-event bound."""

    def __init__(
        self,
        checker: LocalModelChecker,
        initial_system: SystemState,
        clock: BudgetClock,
        local_event_bound: Optional[int],
    ):
        self.checker = checker
        self.protocol = checker.protocol
        self.invariant = checker.invariant
        self.config = checker.config
        self.budget = checker.budget
        self.clock = clock
        self.local_event_bound = local_event_bound
        self.initial_system = initial_system

        self.stats = ExplorationStats()
        self.bugs: List[BugReport] = []
        #: Unverified violating combinations (``collect_preliminary`` mode),
        #: deduplicated — pairwise OPT enumeration can produce the same full
        #: combination through different conflicting pairs.
        self.unverified: List[Combination] = []
        self._unverified_keys: set = set()
        self.series = DepthSeries(checker.algorithm)
        self.space = LocalStateSpace(self.protocol.node_ids())
        self.network = MonotonicNetwork(self.config.duplicate_limit)
        self.emitter = checker.emitter
        self.verifier = SoundnessVerifier(
            self.space,
            self.stats,
            max_sequences_per_node=self.config.max_sequences_per_node,
            max_combinations=self.config.max_combinations_per_check,
            emitter=self.emitter,
            memoize=self.config.memoize_soundness,
            replay_cache_limit=self.config.replay_cache_limit,
        )
        self.run_handle = checker.run_handle
        self.coverage = checker.coverage
        #: Round counter, exposed so heartbeats can report it mid-round.
        self.round_number = 0
        #: Counter/memory sampling into the depth series and the trace;
        #: owns the was-ad-hoc "sample when depth grows" bookkeeping.  The
        #: heartbeat hook keeps the interval cadence alive for the run
        #: registry even when tracing is off.
        self.metrics = RunMetrics(
            self.series,
            self.stats,
            clock.elapsed,
            emitter=self.emitter,
            interval=checker.metrics_interval,
            extra=self._metric_gauges,
            heartbeat=self._heartbeat if self.run_handle is not None else None,
        )
        self.blocked_by_bound = False
        self._blocked_by_depth = False
        # Delivery-event hashes memoised by message content hash: the event
        # hash is a pure function of the message, and every stored message
        # is delivered to many node states.  Tied to the interner toggle so
        # the bench's uncached mode measures the true unoptimized baseline.
        self._delivery_hash_memo: Optional[Dict[int, int]] = (
            {} if interning_enabled() else None
        )
        # Per-node deepest discovery depth.  The exploration depth the paper
        # plots is the length of the longest *combined* event sequence, i.e.
        # the sum of the per-node sequence lengths (the 22-event
        # decomposition of §5.1 sums events across all three nodes), so the
        # series uses sum(per-node maxima).
        self._node_max_depth: Dict[NodeId, int] = {}
        self._retained_bytes = 0
        self._local_cursor: Dict[NodeId, int] = {}
        #: Fault-scheduler cursor per node: index of the next record to offer
        #: a crash (or, for crashed marker records, a restart) to.  Only
        #: advanced when ``fault_events_enabled``.
        self._fault_cursor: Dict[NodeId, int] = {}
        #: Crash events executed so far, against ``max_total_crashes``.
        self._crashes_executed = 0
        #: Drop-sweep cursor per stored message (keyed by ``seq``): index of
        #: the next destination record to offer the drop to.  Only populated
        #: when ``drop_faults``.
        self._drop_cursor: Dict[int, int] = {}
        #: Depth-blocked (stored seq, record index) pairs the drop sweep
        #: passed over; mirrors ``StoredMessage.deferred`` for drops.
        self._drop_deferred: Dict[int, set] = {}
        #: Effective (state-changing) drop events, against ``max_drops``.
        self._drops_executed = 0
        #: Duplication-sweep cursor into the network admission log: sends at
        #: or above it have not been offered a fault-minted duplicate yet.
        self._dup_seq_cursor = 0
        #: True when this round blocked a pending delivery behind a partition
        #: window that eventually closes — the pass must keep rounding (the
        #: round number is the partition clock) instead of declaring
        #: fixpoint on a zero-execution round.
        self._partition_retry = False
        #: The drop sweep only runs against protocols that declare the
        #: ``handle_drop`` omission hook: for drop-oblivious protocols a
        #: silent omission reaches no state a slower network could not
        #: (docs/FAULTS.md), so there is nothing to explore.
        self._has_drop_hook = getattr(self.protocol, "handle_drop", None) is not None
        self._seed_records: Dict[NodeId, NodeStateRecord] = {}
        #: Depth-blocked (node, record index) pairs the local and fault
        #: sweeps' cursors passed over; mirrors ``StoredMessage.deferred``
        #: for internal and fault events.  Write-only bookkeeping in a
        #: fixed-bound run; consumed by depth extension
        #: (docs/CHECKPOINTS.md) under :attr:`_reoffer`.
        self._local_deferred: Dict[NodeId, set] = {}
        self._fault_deferred: Dict[NodeId, set] = {}
        #: Run-level context preceding this pass — counters already merged
        #: and bugs already confirmed by earlier widened passes — so a
        #: mid-pass checkpoint can snapshot the whole run.  Rebound by
        #: ``_run_loop`` before each execute.
        self.prior_stats = ExplorationStats()
        self.prior_bugs: List[BugReport] = []
        #: True when this pass was rebuilt from a checkpoint: execute()
        #: then skips seeding (the seeds are among the restored records).
        self._restored = False
        #: Depth-extension mode: round 1 re-offers every deferred pair the
        #: old depth bound blocked, then the normal cursor sweeps take over.
        self._reoffer = False
        # reverify_rejected extension: cached rejected combinations (an LRU
        # ordered dict, bounded by ``rejected_cache_limit``), indexed by the
        # (node, record index) pairs they contain.  Entry keys are monotone
        # insertion numbers; reverification touches an entry, eviction drops
        # the least recently touched.
        self._rejected_entries: "OrderedDict[int, Combination]" = OrderedDict()
        self._rejected_next = 0
        self._rejected_index: Dict[Tuple[NodeId, int], List[int]] = {}
        # Cache of invariant projections: recomputing them for every pairwise
        # scan is quadratic in visited states, and projections of large
        # multi-decree states are not free.
        self._projection_cache: Dict[Tuple[NodeId, int], object] = {}
        # Incremental pairwise-OPT partner index: per node, the records with
        # non-None projections, maintained as states are discovered so each
        # anchored enumeration stops rescanning every visited state.
        use_pairwise_opt = (
            self.config.invariant_specific_creation
            and isinstance(self.invariant, DecomposableInvariant)
            and self.invariant.pairwise
        )
        self._projection_index: Optional[ProjectionIndex] = (
            ProjectionIndex(self.space.node_ids)
            if use_pairwise_opt and self.config.incremental_enumeration
            else None
        )
        #: Parallel frontier exploration (docs/PERFORMANCE.md): per-round
        #: speculative precomputation of handler results and content hashes
        #: across the shared worker pool.  ``None`` (``explore_workers=0``)
        #: keeps the sweep fully in-process.
        self._speculator: Optional[RoundSpeculator] = RoundSpeculator.for_pass(self)
        #: Symmetry reduction (docs/REDUCTION.md): orbit canonicalisation of
        #: candidate combinations under the protocol-declared node-symmetry
        #: group.  ``None`` — the default, and whenever the protocol declares
        #: no usable classes — leaves enumeration byte-identical to a build
        #: without the reducer.
        self._symmetry: Optional[SymmetryReducer] = SymmetryReducer.for_pass(self)
        #: Commutativity pruning (docs/REDUCTION.md): suppress non-canonical
        #: same-node delivery-order diamonds in the predecessor DAG.
        self._por = self.config.por_pruning

    # -- top level -------------------------------------------------------------

    def execute(self) -> _PassOutcome:
        """Run rounds to fixpoint, a stop criterion, or a confirmed bug."""
        checkpointer = self.checker.checkpointer
        try:
            if not self._restored:
                self._seed()
            while True:
                round_start = time.perf_counter()
                checked_before = self._checking_seconds()
                transitions_before = self.stats.transitions
                self.round_number += 1
                with self.emitter.span("round", number=self.round_number) as span:
                    try:
                        executions = self._round()
                        span.add(executions=executions)
                    finally:
                        # Attribute the round's exploration time even when a
                        # stop criterion (or confirmed bug) aborts it
                        # mid-round, so the Fig. 13 phase decomposition
                        # always accounts for the whole run.
                        round_elapsed = time.perf_counter() - round_start
                        span.add(
                            transitions=self.stats.transitions
                            - transitions_before
                        )
                        self.stats.add_phase_time(
                            "explore",
                            max(
                                0.0,
                                round_elapsed
                                - (self._checking_seconds() - checked_before),
                            ),
                        )
                self._record_depth_sample()
                # Checkpoints happen here and only here: a round boundary,
                # still inside the pass (the ``finally`` below folds
                # network counters into ``stats`` — a snapshot taken after
                # it would double-fold them when the restored pass ends).
                if executions == 0 and not self._partition_retry:
                    reason = (
                        "depth bound reached"
                        if self._blocked_by_depth
                        else "state space exhausted"
                    )
                    if checkpointer is not None:
                        checkpointer.write(
                            snapshot_pass(
                                self,
                                reason="pass completed",
                                pass_completed=True,
                                pass_reason=reason,
                            )
                        )
                        self._heartbeat_now()
                    return _PassOutcome(stopped=False, completed=True, reason=reason)
                if checkpointer is not None and checkpointer.due(
                    self.round_number, self.config
                ):
                    interrupted = checkpointer.stop_requested
                    checkpointer.write(
                        snapshot_pass(
                            self, reason="sigterm" if interrupted else "cadence"
                        )
                    )
                    self._heartbeat_now()
                    if interrupted:
                        raise _StopSearch(
                            "interrupted (checkpoint written)", completed=False
                        )
        except _StopSearch as stop:
            return _PassOutcome(
                stopped=True, completed=stop.completed, reason=stop.reason
            )
        finally:
            self.stats.suppressed_duplicates += self.network.suppressed_duplicates
            self.stats.node_states = self.space.total_states()
            # Final sample: the series must end at the run's actual end time
            # and final counters, even when the deepest level was reached
            # long before the run stopped.
            self._record_depth_sample(force=True)
            # Hash-interner hit rates go to the trace only: the interner is
            # process-global (warm across runs in one process), so its
            # counters must stay out of the deterministic metric series.
            if self.emitter.enabled and interning_enabled():
                self.emitter.event("hash_cache", **intern_stats())
            # Reduction accounting (docs/REDUCTION.md): one aggregate event
            # per pass, only when a reduction is actually on.
            if self.emitter.enabled and (self._symmetry is not None or self._por):
                payload: Dict[str, int] = {
                    "symmetry_skips": self.stats.symmetry_skips,
                    "por_links_suppressed": self.stats.por_links_suppressed,
                }
                if self._symmetry is not None:
                    payload.update(self._symmetry.summary())
                self.emitter.event("reduction", **payload)

    def _seed(self) -> None:
        """Install the live state (Fig. 9 lines 2-4): seed each ``LS_n``.

        The initial system state is also invariant-checked directly — a
        violation on the live state is sound by definition (§4.1).
        """
        for node, state in self.initial_system.items():
            record = self.space.seed(node, state)
            self._seed_records[node] = record
            self._local_cursor[node] = 0
            self._fault_cursor[node] = 0
            self._retained_bytes += record.retained_bytes()
            if self._projection_index is not None:
                self._projection_index.note(
                    node, record, self._cached_projection(node, record)
                )
        if self.config.create_system_states:
            self.stats.invariant_checks += 1
            holds = self.invariant.check(self.initial_system)
            if self.coverage.enabled:
                self.coverage.note_invariant(
                    type(self.invariant).__name__, not holds
                )
            if not holds:
                # The live state itself violates: sound by definition.
                self._report_bug(self.initial_system, trace=())
        self._record_depth_sample(force=True)

    # -- rounds -----------------------------------------------------------------

    def _round(self) -> int:
        """One sweep of network and local events; returns executions done."""
        executions = 0
        self._partition_retry = False
        partitions = self.config.partition_schedules
        # Parallel frontier exploration: snapshot the round-start frontier
        # and precompute its handler results + content hashes across the
        # worker pool.  The sweeps below are unchanged — they consume a
        # precomputed outcome on a table hit and compute inline on a miss,
        # so order, counters and results are byte-identical to serial.
        speculator = self._speculator
        if speculator is not None:
            speculator.begin_round()
        # Network events: each stored message runs on the destination states
        # it has not been executed on yet ("by jumping over the old states").
        for node in self.space.node_ids:
            store = self.space.store(node)
            for stored in self.network.for_destination(node):
                if partitions and self._partition_blocked(stored):
                    # The cursor does NOT advance: the pair is merely on
                    # hold, and will be swept normally once the window
                    # closes.  Pairs under a permanent window set no retry
                    # flag — they can reach fixpoint blocked.
                    if stored.cursor < len(store) or (
                        self._reoffer and stored.deferred
                    ):
                        self.stats.partition_blocks += 1
                        if not self._partition_permanent(stored):
                            self._partition_retry = True
                    continue
                if self._reoffer and stored.deferred:
                    executions += self._reoffer_deliveries(store, stored)
                end = len(store)
                if stored.cursor >= end:
                    continue
                for index in range(stored.cursor, end):
                    record = store.records[index]
                    stored.cursor = index + 1
                    if record.discarded or record.crashed:
                        # Crashed markers execute nothing; their messages
                        # wait in ``I+`` for the restarted state.
                        continue
                    if not self._depth_allows(record):
                        # The cursor has moved past this pair for good;
                        # remember it so a depth extension can re-offer it.
                        stored.deferred.add(index)
                        continue
                    executions += self._execute_delivery(record, stored)
        # Local events: internal actions of states not yet expanded.
        for node in self.space.node_ids:
            store = self.space.store(node)
            deferred = self._local_deferred.get(node)
            if self._reoffer and deferred:
                executions += self._reoffer_locals(store, deferred, speculator)
            end = len(store)
            start = self._local_cursor[node]
            for index in range(start, end):
                record = store.records[index]
                self._local_cursor[node] = index + 1
                if record.discarded or record.crashed:
                    continue
                if not self._depth_allows(record):
                    self._local_deferred.setdefault(node, set()).add(index)
                    continue
                if (
                    self.local_event_bound is not None
                    and record.local_depth >= self.local_event_bound
                ):
                    self.blocked_by_bound = True
                    continue
                executions += self._expand_local(record, speculator)
        # Fault events (docs/FAULTS.md): crash each eligible node state once,
        # restart each crashed marker record once.  Entirely absent — not
        # merely inert — when disabled, so the default run is byte-identical
        # to a build without the scheduler.
        if self.config.fault_events_enabled:
            executions += self._fault_round()
        # Omission and duplication sweeps (docs/FAULTS.md): like the crash
        # scheduler, entirely absent — not merely inert — when disabled.
        if self.config.drop_faults:
            executions += self._drop_round()
        if self.config.duplicate_faults:
            executions += self._duplicate_round()
        return executions

    def _expand_local(self, record: NodeStateRecord, speculator) -> int:
        """Execute every enabled internal action of one node state."""
        executions = 0
        hit = (
            speculator.internal_actions(record) if speculator is not None else None
        )
        if hit is not None:
            actions, outcomes = hit
            for action, outcome in zip(actions, outcomes):
                executions += self._execute_internal(record, action, spec=outcome)
        else:
            for action in self.protocol.enabled_actions(record.state):
                executions += self._execute_internal(record, action)
        return executions

    # -- depth-extension re-offer (docs/CHECKPOINTS.md) --------------------------
    #
    # The cursor discipline advances past depth-blocked records for good,
    # which is exactly right for a fixed bound — and exactly wrong for a
    # bound that later grows.  The sweeps above record every blocked pair in
    # a ``deferred`` set; these helpers, active only under ``_reoffer``
    # (depth extension), drain the pairs the new bound unblocks.  A pair
    # still blocked under the new bound stays deferred for a further
    # extension; a pair whose record was discarded or crashed meanwhile is
    # dropped, matching what the cursor sweep would have done.

    def _reoffer_deliveries(self, store, stored: StoredMessage) -> int:
        """Deliver ``stored`` to deferred records the new bound unblocked."""
        executions = 0
        for index in sorted(stored.deferred):
            record = store.records[index]
            if record.discarded or record.crashed:
                stored.deferred.discard(index)
                continue
            if not self._depth_allows(record):
                continue
            stored.deferred.discard(index)
            executions += self._execute_delivery(record, stored)
        return executions

    def _reoffer_locals(self, store, deferred: set, speculator) -> int:
        """Expand deferred records the new bound unblocked."""
        executions = 0
        for index in sorted(deferred):
            record = store.records[index]
            if record.discarded or record.crashed:
                deferred.discard(index)
                continue
            if not self._depth_allows(record):
                continue
            deferred.discard(index)
            if (
                self.local_event_bound is not None
                and record.local_depth >= self.local_event_bound
            ):
                self.blocked_by_bound = True
                continue
            executions += self._expand_local(record, speculator)
        return executions

    def _reoffer_faults(self, store, deferred: set) -> int:
        """Offer faults to deferred records the new bound unblocked.

        Crash caps consume-and-drop, exactly like the cursor sweep: a
        record over its crash budget gets no fault now or later.
        """
        executions = 0
        for index in sorted(deferred):
            record = store.records[index]
            if record.discarded:
                deferred.discard(index)
                continue
            if not self._depth_allows(record):
                continue
            deferred.discard(index)
            if record.crashed:
                executions += self._execute_restart(record)
                continue
            if record.crashes >= self.config.max_crashes_per_node:
                continue
            limit = self.config.max_total_crashes
            if limit is not None and self._crashes_executed >= limit:
                continue
            executions += self._execute_crash(record)
        return executions

    def _fault_round(self) -> int:
        """One sweep of the fault scheduler; returns executions done.

        Mirrors the local-event sweep: a per-node cursor offers each record
        exactly one fault.  A live record gets a :class:`CrashEvent` when its
        discovery path has crash budget left (per-node and global caps); a
        crashed marker record gets the :class:`RestartEvent` that boots it
        from its durable fragment.  Records minted here are swept in a later
        round, exactly like states minted by handlers.
        """
        executions = 0
        for node in self.space.node_ids:
            store = self.space.store(node)
            deferred = self._fault_deferred.get(node)
            if self._reoffer and deferred:
                executions += self._reoffer_faults(store, deferred)
            end = len(store)
            start = self._fault_cursor[node]
            for index in range(start, end):
                record = store.records[index]
                self._fault_cursor[node] = index + 1
                if record.discarded:
                    continue
                if not self._depth_allows(record):
                    self._fault_deferred.setdefault(node, set()).add(index)
                    continue
                if record.crashed:
                    executions += self._execute_restart(record)
                    continue
                if record.crashes >= self.config.max_crashes_per_node:
                    continue
                limit = self.config.max_total_crashes
                if limit is not None and self._crashes_executed >= limit:
                    continue
                executions += self._execute_crash(record)
        return executions

    def _partition_blocked(self, stored: StoredMessage) -> bool:
        """Is ``stored`` unreachable under an active partition window?

        A window ``(start, end, srcs, dests)`` blocks the pair while the
        pass's round number lies in ``[start, end]`` (``end=None`` =
        forever).  The round number is the partition clock: deterministic,
        checkpointed, and shared with the per-depth series.
        """
        src = stored.message.src
        dest = stored.message.dest
        rnd = self.round_number
        for start, end, srcs, dests in self.config.partition_schedules:
            if (
                src in srcs
                and dest in dests
                and start <= rnd
                and (end is None or rnd <= end)
            ):
                return True
        return False

    def _partition_permanent(self, stored: StoredMessage) -> bool:
        """Is ``stored`` under a partition window that never closes?

        Permanently blocked pairs must not keep the pass alive: with
        ``end=None`` covering the pair, no later round can deliver it, so a
        zero-execution round is a genuine fixpoint.
        """
        src = stored.message.src
        dest = stored.message.dest
        for start, end, srcs, dests in self.config.partition_schedules:
            if (
                end is None
                and src in srcs
                and dest in dests
                and start <= self.round_number
            ):
                return True
        return False

    def _drop_round(self) -> int:
        """One sweep of the omission scheduler; returns executions done.

        Mirrors the delivery sweep with an independent cursor pair: each
        stored original copy is offered as a :class:`DropEvent` to every
        destination record it has not been offered to yet.  Eligible pairs
        are those a delivery would also be offered (live record, depth
        budget, message not already in the record's history); fault-minted
        duplicates are never dropped.  Skipped entirely for drop-oblivious
        protocols — without a ``handle_drop`` hook an omission reaches no
        new states under the monotonic network (docs/FAULTS.md).
        """
        if not self._has_drop_hook:
            return 0
        executions = 0
        for node in self.space.node_ids:
            store = self.space.store(node)
            for stored in self.network.for_destination(node):
                if stored.duplicate:
                    continue
                deferred = self._drop_deferred.get(stored.seq)
                if self._reoffer and deferred:
                    executions += self._reoffer_drops(store, stored, deferred)
                end = len(store)
                start = self._drop_cursor.get(stored.seq, 0)
                for index in range(start, end):
                    record = store.records[index]
                    self._drop_cursor[stored.seq] = index + 1
                    if record.discarded or record.crashed:
                        continue
                    if not self._depth_allows(record):
                        self._drop_deferred.setdefault(stored.seq, set()).add(
                            index
                        )
                        continue
                    if stored.hash in record.history:
                        continue
                    limit = self.config.max_drops
                    if limit is not None and self._drops_executed >= limit:
                        continue
                    executions += self._execute_drop(record, stored)
        return executions

    def _reoffer_drops(self, store, stored: StoredMessage, deferred: set) -> int:
        """Offer drops to deferred records the new bound unblocked.

        The ``max_drops`` cap consumes-and-drops, exactly like the cursor
        sweep: a pair passed over while the cap is spent gets no drop now
        or later.
        """
        executions = 0
        for index in sorted(deferred):
            record = store.records[index]
            if record.discarded or record.crashed:
                deferred.discard(index)
                continue
            if not self._depth_allows(record):
                continue
            deferred.discard(index)
            if stored.hash in record.history:
                continue
            limit = self.config.max_drops
            if limit is not None and self._drops_executed >= limit:
                continue
            executions += self._execute_drop(record, stored)
        return executions

    def _duplicate_round(self) -> int:
        """Re-admit each newly generated message once as a duplicate copy.

        The duplication scheduler rides the network's own admission path:
        ``add`` either admits the copy within ``duplicate_limit`` (and the
        copy is marked fault-minted, so its deliveries bypass the history
        skip as :class:`DuplicateEvent` steps) or suppresses it into the
        ``suppressed_duplicates`` counter.  Minting counts as an execution
        so the delivery sweep of the next round sees the copies before the
        pass can declare fixpoint.
        """
        executions = 0
        high = self.network.high_water
        for stored in self.network.messages_since(self._dup_seq_cursor):
            if stored.duplicate:
                continue
            copy = self.network.add(stored.message)
            if copy is not None:
                copy.duplicate = True
                executions += 1
        self._dup_seq_cursor = high
        return executions

    def _depth_allows(self, record: NodeStateRecord) -> bool:
        """Depth-budget gate: may ``record`` still execute events?

        Implements the bounded-search knob the §5 evaluation uses to plot
        per-depth curves; remembers when the bound bit so the pass can
        report "depth bound reached" instead of claiming exhaustion.
        """
        limit = self.budget.max_depth
        if limit is not None and record.depth >= limit:
            self._blocked_by_depth = True
            return False
        return True

    # -- handler execution ---------------------------------------------------------

    def _execute_delivery(self, record: NodeStateRecord, stored: StoredMessage) -> int:
        """Execute one stored message on one node state (Fig. 9 line 6).

        Runs the altered network handler ``H'_M`` of Fig. 8: the message is
        taken from the shared monotonic ``I+`` and *not* consumed.  The
        §4.2 redundant-execution rule (skip messages already in the state's
        history) is applied first.  Returns handler executions done (0/1).
        """
        if stored.hash in record.history:
            if stored.duplicate:
                if -(stored.seq + 1) in record.history:
                    # This path already consumed the copy (its per-copy
                    # token is in the history): redelivering it again
                    # would exceed the admitted duplication budget.
                    self.stats.history_skips += 1
                    return 0
                # A fault-minted copy exists precisely to bypass the
                # at-most-once rule: redeliver it (docs/FAULTS.md).
                return self._execute_duplicate(record, stored)
            self.stats.history_skips += 1
            return 0
        self._tick_budget()
        if self.coverage.enabled:
            self.coverage.note_delivery(type(stored.message.payload).__name__)
        spec = (
            self._speculator.delivery(record, stored)
            if self._speculator is not None
            else None
        )
        if spec is not None:
            if spec == "a":
                self._handle_assertion_failure(record)
                return 1
            if spec == "n":
                self.stats.noop_executions += 1
                return 1
            self.stats.transitions += 1
            memo = self._delivery_hash_memo
            if memo is not None and stored.hash not in memo:
                memo[stored.hash] = spec.ehash
            self._integrate(
                record,
                DeliveryEvent(stored.message),
                stored.hash,
                spec.result,
                is_internal=False,
                event_hash_value=spec.ehash,
                precomputed=spec,
            )
            return 1
        try:
            result = self.protocol.handle_message(record.state, stored.message)
        except LocalAssertionError:
            self._handle_assertion_failure(record)
            return 1
        if result.is_noop(record.state):
            self.stats.noop_executions += 1
            return 1
        self.stats.transitions += 1
        event = DeliveryEvent(stored.message)
        memo = self._delivery_hash_memo
        if memo is None:
            ehash = event_hash(event)
        else:
            ehash = memo.get(stored.hash)
            if ehash is None:
                ehash = event_hash(event)
                memo[stored.hash] = ehash
        self._integrate(
            record, event, stored.hash, result, is_internal=False,
            event_hash_value=ehash,
        )
        return 1

    def _execute_internal(
        self,
        record: NodeStateRecord,
        action: Action,
        spec: Optional[object] = None,
    ) -> int:
        """Execute one enabled internal action (Fig. 9 line 7, handler ``H_A``).

        Local events are unchanged by the Fig. 8 transformation — they touch
        no network.  ``spec`` is this action's precomputed outcome when the
        round's parallel frontier pass covered it.  Returns handler
        executions done (always 1).
        """
        self._tick_budget()
        if self.coverage.enabled:
            self.coverage.note_action(action.name)
        if spec is not None:
            if spec == "a":
                self._handle_assertion_failure(record)
                return 1
            if spec == "n":
                self.stats.noop_executions += 1
                return 1
            self.stats.transitions += 1
            self._integrate(
                record,
                InternalEvent(action),
                None,
                spec.result,
                is_internal=True,
                event_hash_value=spec.ehash,
                precomputed=spec,
            )
            return 1
        try:
            result = self.protocol.handle_action(record.state, action)
        except LocalAssertionError:
            self._handle_assertion_failure(record)
            return 1
        if result.is_noop(record.state):
            self.stats.noop_executions += 1
            return 1
        self.stats.transitions += 1
        event = InternalEvent(action)
        self._integrate(record, event, None, result, is_internal=True)
        return 1

    def _execute_crash(self, record: NodeStateRecord) -> int:
        """Crash one node state (docs/FAULTS.md): volatile state is lost.

        The successor is a :class:`~repro.model.types.CrashedState` marker
        carrying only the protocol's durable fragment.  No network effect:
        under the monotonic ``I+`` the node's in-flight messages outlive it
        by construction.  Returns handler executions done (always 1).
        """
        self._tick_budget()
        spec = (
            self._speculator.crash(record) if self._speculator is not None else None
        )
        if spec is not None:
            result = spec.result
            ehash: Optional[int] = spec.ehash
        else:
            durable = durable_projection(self.protocol, record.node, record.state)
            result = HandlerResult(CrashedState(node=record.node, durable=durable))
            ehash = None
        self.stats.transitions += 1
        self.stats.fault_crashes += 1
        self._crashes_executed += 1
        if self.coverage.enabled:
            self.coverage.note_fault("crash", record.node)
        if self.emitter.enabled:
            self.emitter.event(
                "fault", kind="crash", node=record.node, depth=record.depth
            )
        self._integrate(
            record,
            CrashEvent(record.node),
            None,
            result,
            is_internal=False,
            event_hash_value=ehash,
            fault="crash",
            precomputed=spec,
        )
        return 1

    def _execute_restart(self, record: NodeStateRecord) -> int:
        """Restart one crashed marker record from its durable fragment.

        The recovered state enters ``LS_n`` like any newly discovered state
        — with an *empty* history, so messages the node executed before the
        crash may be redelivered to it (a real redelivery to a rebooted
        process).  Returns handler executions done (always 1).
        """
        self._tick_budget()
        spec = (
            self._speculator.restart(record) if self._speculator is not None else None
        )
        if spec is not None:
            result = spec.result
            ehash: Optional[int] = spec.ehash
        else:
            recovered = restart_state(self.protocol, record.node, record.state.durable)
            result = HandlerResult(recovered)
            ehash = None
        self.stats.transitions += 1
        self.stats.fault_restarts += 1
        if self.coverage.enabled:
            self.coverage.note_fault("restart", record.node)
        if self.emitter.enabled:
            self.emitter.event(
                "fault", kind="restart", node=record.node, depth=record.depth
            )
        self._integrate(
            record,
            RestartEvent(record.node),
            None,
            result,
            is_internal=False,
            event_hash_value=ehash,
            fault="restart",
            precomputed=spec,
        )
        return 1

    def _execute_drop(self, record: NodeStateRecord, stored: StoredMessage) -> int:
        """Lose one stored copy before delivery to one node state.

        The protocol's ``handle_drop`` hook models the destination's
        timeout/presumed-failure reaction.  The integrated
        :class:`DropEvent` *consumes* the message hash: the successor
        record's history contains it, so the copy is never-deliverable
        along that branch — the cursor pair is pruned exactly as §4.2's
        redundant-execution rule prunes an already-delivered message.
        Returns handler executions done (always 1).
        """
        self._tick_budget()
        try:
            result = drop_result(self.protocol, record.state, stored.message)
        except LocalAssertionError:
            self._handle_assertion_failure(record)
            return 1
        assert result is not None  # the sweep gates on the hook's presence
        if result.is_noop(record.state):
            self.stats.noop_executions += 1
            return 1
        self.stats.transitions += 1
        self.stats.fault_drops += 1
        self._drops_executed += 1
        if self.coverage.enabled:
            self.coverage.note_fault("drop", record.node)
        if self.emitter.enabled:
            self.emitter.event(
                "fault", kind="drop", node=record.node, depth=record.depth
            )
        self._integrate(
            record, DropEvent(stored.message), stored.hash, result, is_internal=False
        )
        return 1

    def _execute_duplicate(self, record: NodeStateRecord, stored: StoredMessage) -> int:
        """Redeliver a fault-minted duplicate copy to one node state.

        Reached from :meth:`_execute_delivery` when the copy's hash is
        already in the record's history — exactly the redelivery the §4.2
        at-most-once rule would otherwise skip.  Runs the ordinary message
        handler; integrates as a :class:`DuplicateEvent`, a local-like step
        during soundness replay (the copy has no generating handler, so it
        consumes nothing).  The successor's history gains the copy's
        *per-copy token* (``-(seq + 1)``, collision-free against the
        non-negative 64-bit content hashes), so each admitted copy is
        executed at most once per discovery path — without the token a
        non-idempotent handler would chain unboundedly, one redelivery per
        successor record.  Returns handler executions done (always 1).
        """
        self._tick_budget()
        if self.coverage.enabled:
            self.coverage.note_delivery(type(stored.message.payload).__name__)
        try:
            result = self.protocol.handle_message(record.state, stored.message)
        except LocalAssertionError:
            self._handle_assertion_failure(record)
            return 1
        if result.is_noop(record.state):
            self.stats.noop_executions += 1
            return 1
        self.stats.transitions += 1
        self.stats.fault_duplicates += 1
        if self.coverage.enabled:
            self.coverage.note_fault("duplicate", record.node)
        if self.emitter.enabled:
            self.emitter.event(
                "fault", kind="duplicate", node=record.node, depth=record.depth
            )
        self._integrate(
            record,
            DuplicateEvent(stored.message),
            None,
            result,
            is_internal=False,
            history_token=-(stored.seq + 1),
        )
        return 1

    def _handle_assertion_failure(self, record: NodeStateRecord) -> None:
        """Apply the §4.2 local-assertion policy to a failing handler.

        "discard" drops the node state the handler would have produced (the
        paper's choice: such assertions mostly flag messages delivered to
        states no real run pairs them with); "ignore" treats the execution
        as a no-op.  Seed states are never discarded — they came from a
        real run.
        """
        if self.config.assertion_policy == "discard" and not record.seed:
            self.space.store(record.node).mark_discarded(record)
            self.stats.states_discarded_by_assert += 1
        # Under "ignore" (or on a seed state) the execution is a no-op.
        self.stats.noop_executions += 1

    def _integrate(
        self,
        record: NodeStateRecord,
        event: Event,
        consumed_hash: Optional[int],
        result: HandlerResult,
        is_internal: bool,
        event_hash_value: Optional[int] = None,
        fault: Optional[str] = None,
        precomputed: Optional[SpecExec] = None,
        history_token: Optional[int] = None,
    ) -> None:
        """Fold a handler result into ``LS``/``I+`` (Fig. 9 lines 8-9).

        Sends join the monotonic network; the successor state is deduped by
        content hash and linked to its predecessor (the pointer structure
        §4.1's soundness verification walks).  A genuinely new node state
        triggers system-state creation via :meth:`_check_new_state`; a
        state change without novelty may still add a predecessor pointer,
        which under ``reverify_rejected`` re-opens cached rejected
        combinations (§4.2's completeness patch).

        ``fault`` marks crash/restart integrations (docs/FAULTS.md): a crash
        mints a crashed marker record (crash count incremented, excluded
        from enumeration, never anchor-checked); a restart starts the
        recovered state with an empty history so pre-crash messages can be
        redelivered to it.

        ``precomputed`` carries a parallel-exploration worker's hashes for
        this execution (successor hash/size, per-send hash/size): the merge
        then skips every re-encoding but makes exactly the same decisions —
        send admission, successor dedup and predecessor linking are driven
        by the same hash values a serial run would compute.
        """
        if precomputed is not None:
            generated = precomputed.generated
            for message, info in zip(result.sends, precomputed.send_info):
                self.network.add_hashed(message, info[0], info[1])
            new_hash = precomputed.new_hash
            new_size: Optional[int] = precomputed.new_size
        else:
            generated = message_hashes(result.sends)
            self.network.add_all(result.sends)
            new_hash = content_hash(result.state)
            new_size = None
        link = PredecessorLink(
            prev_hash=record.hash,
            event=event,
            event_hash=(
                event_hash(event) if event_hash_value is None else event_hash_value
            ),
            consumed_hash=consumed_hash,
            generated_hashes=generated,
        )
        store = self.space.store(record.node)
        if new_hash == record.hash:
            # Sends without a state change: a self-referencing link, ignored
            # by the predecessor closure (§4.2).
            record.add_predecessor(link)
            return
        existing = store.lookup(new_hash)
        if existing is not None:
            if precomputed is not None:
                # A speculatively-executed successor the deterministic merge
                # found already in LS_n — exactly the dedup serial would do.
                self.stats.explore_merge_conflicts_suppressed += 1
            if (
                self._por
                and consumed_hash is not None
                and isinstance(event, DeliveryEvent)
                and self._por_redundant(record, existing, link)
            ):
                # Commutativity pruning (docs/REDUCTION.md): this link would
                # close the non-canonical side of a delivery-order diamond
                # whose deliveries provably commute; the canonical ordering
                # already reaches the same state.
                self.stats.por_links_suppressed += 1
                return
            if existing.add_predecessor(link):
                self._retained_bytes += LINK_BYTES
                # The predecessor DAG changed: invalidate the soundness
                # verifier's memoised sequence enumerations for this node.
                store.note_link()
                if self.config.reverify_rejected:
                    self._reverify_affected(existing)
            return
        history = record.history
        if consumed_hash is not None:
            history = history | {consumed_hash}
        if history_token is not None:
            # Duplicate redelivery: a negative per-copy token marking this
            # admitted copy as consumed along the new record's path.
            history = history | {history_token}
        if fault == "restart":
            # A rebooted process has no delivery memory: clear the history
            # so earlier messages can run again on the recovered state.
            history = frozenset()
        new_record = store.add(
            result.state,
            new_hash,
            depth=record.depth + 1,
            local_depth=record.local_depth + (1 if is_internal else 0),
            history=history,
            crashes=record.crashes + (1 if fault == "crash" else 0),
            crashed=fault == "crash",
            state_size=new_size,
        )
        new_record.add_predecessor(link)
        self._retained_bytes += new_record.retained_bytes()
        if new_record.depth > self._node_max_depth.get(record.node, 0):
            self._node_max_depth[record.node] = new_record.depth
        if new_record.crashed:
            # A down node joins no system state: no projection to index, no
            # anchored invariant checking.  Its only further event is the
            # restart the fault sweep will offer it.
            return
        if self._projection_index is not None:
            self._projection_index.note(
                record.node,
                new_record,
                self._cached_projection(record.node, new_record),
            )
        self._check_new_state(new_record)

    def _por_redundant(
        self,
        record: NodeStateRecord,
        existing: NodeStateRecord,
        link: PredecessorLink,
    ) -> bool:
        """Would ``link`` close the redundant side of a commuting diamond?

        The link being added delivers message ``m2`` on ``record`` (whose
        own discovery includes a delivery of some ``m1``) and lands on
        ``existing``.  When the mirror path — ``m2`` first, then ``m1``,
        through a sibling record — already reaches ``existing``, both
        orderings of two deliveries to the *same* node are in the DAG.  If
        the deliveries provably commute (neither message was generated by
        the other's execution, so neither ordering is causally required)
        the non-canonical ordering — descending consumed hashes — is
        redundant for path enumeration and may be suppressed.  One-sided by
        construction: suppression removes candidate orderings only, so a
        witness found later is still genuinely replayable (the documented
        conservatism is a possibly *missed* witness, docs/REDUCTION.md).
        """
        m2 = link.consumed_hash
        assert m2 is not None
        store = self.space.store(record.node)
        for lq in record.predecessors:
            m1 = lq.consumed_hash
            # Only delivery→delivery diamonds, and only the non-canonical
            # ordering (m1 before m2 with m1 > m2) is a suppression
            # candidate; the ascending ordering is always kept.  Drop links
            # also carry a consumed hash but are never deliveries: losing a
            # message does not commute with delivering another, so every
            # leg of the diamond must be a genuine delivery.
            if (
                m1 is None
                or lq.prev_hash is None
                or m1 <= m2
                or not isinstance(lq.event, DeliveryEvent)
            ):
                continue
            if m2 in lq.generated_hashes:
                continue  # m2 causally follows m1: not a commuting pair
            for lt in existing.predecessors:
                if (
                    lt.consumed_hash != m1
                    or lt.prev_hash is None
                    or not isinstance(lt.event, DeliveryEvent)
                ):
                    continue
                sibling = store.lookup(lt.prev_hash)
                if sibling is None or sibling is record:
                    continue
                for lr in sibling.predecessors:
                    if (
                        lr.prev_hash == lq.prev_hash
                        and lr.consumed_hash == m2
                        and isinstance(lr.event, DeliveryEvent)
                        and m1 not in lr.generated_hashes
                    ):
                        return True
        return False

    # -- invariant checking over temporary system states -----------------------------

    def _check_new_state(self, new_record: NodeStateRecord) -> None:
        """Materialise and check system states anchored at a new node state.

        Fig. 9 lines 10-16: every new node state triggers temporary
        system-state creation (GEN: the full anchored product of §4;
        OPT: only invariant-relevant combinations via the decomposition of
        §4.2), invariant checks on each, and — for violations — soundness
        verification.  Wall time lands in the ``system_states`` Fig. 13
        bucket (soundness time is compensated out by
        :meth:`_verify_and_report`); with tracing on, the batch becomes one
        ``materialise`` span carrying the created/violation counts.
        """
        if not self.config.create_system_states:
            return
        started = time.perf_counter()
        created_before = self.stats.system_states_created
        violations_before = self.stats.preliminary_violations
        with self.emitter.span("materialise", node=new_record.node) as span:
            try:
                if isinstance(self.invariant, LocalInvariant):
                    self._check_local_invariant(new_record)
                    return
                use_opt = self.config.invariant_specific_creation and isinstance(
                    self.invariant, DecomposableInvariant
                )
                if use_opt:
                    combos = enumerate_optimized(
                        self.space,
                        new_record.node,
                        new_record,
                        self.invariant,
                        completion_cap=self.config.max_completions_per_conflict,
                        projection_of=self._cached_projection,
                        index=self._projection_index,
                    )
                else:
                    combos = enumerate_general(
                        self.space, new_record.node, new_record
                    )
                for checked, combo in enumerate(combos):
                    if checked % 64 == 63:
                        if self.clock.out_of_time():
                            raise _StopSearch(
                                "time budget exhausted", completed=False
                            )
                        # Soundness enumeration dominates hard rounds; keep
                        # the live heartbeat cadence alive from inside it.
                        self.metrics.pulse(self.explored_depth)
                    if self._symmetry is not None and not (
                        self._symmetry.first_occurrence(combo)
                    ):
                        # An orbit sibling was already materialised and
                        # checked; under the declared equivariance its
                        # verdict covers this combination.
                        self.stats.symmetry_skips += 1
                        continue
                    self.stats.system_states_created += 1
                    system = combination_to_system_state(combo)
                    self.stats.invariant_checks += 1
                    holds = self.invariant.check(system)
                    if self.coverage.enabled:
                        self.coverage.note_invariant(
                            type(self.invariant).__name__, not holds
                        )
                    if holds:
                        continue
                    self.stats.preliminary_violations += 1
                    self._verify_and_report(combo, system)
            finally:
                span.add(
                    system_states=self.stats.system_states_created
                    - created_before,
                    violations=self.stats.preliminary_violations
                    - violations_before,
                )
                self.stats.add_phase_time(
                    "system_states", time.perf_counter() - started
                )

    def _check_local_invariant(self, new_record: NodeStateRecord) -> None:
        """Check a node-local invariant on one new node state.

        Local invariants need no system-state product at all — the cheapest
        point in the §4.2 creation spectrum.  A violating node state is a
        bug iff *some* valid system state contains it, so confirmation
        still searches completions of the other nodes' states through
        soundness verification.
        """
        assert isinstance(self.invariant, LocalInvariant)
        self.stats.invariant_checks += 1
        holds = self.invariant.check_local(new_record.node, new_record.state)
        if self.coverage.enabled:
            self.coverage.note_invariant(type(self.invariant).__name__, not holds)
        if holds:
            return
        self.stats.preliminary_violations += 1
        if not self.config.verify_soundness:
            return
        # The violating node state is a bug iff it occurs in *some* valid
        # system state; its own event sequence may consume messages other
        # nodes must first generate, so soundness must search over
        # completions of the other nodes' states, not just the seeds.
        bugs_before = len(self.bugs)
        cap = self.config.max_completions_per_local_violation
        for tried, combo in enumerate(
            enumerate_general(self.space, new_record.node, new_record)
        ):
            if cap is not None and tried >= cap:
                return
            if tried % 16 == 15:
                if self.clock.out_of_time():
                    raise _StopSearch("time budget exhausted", completed=False)
                self.metrics.pulse(self.explored_depth)
            if self._symmetry is not None and not (
                self._symmetry.first_occurrence(combo)
            ):
                self.stats.symmetry_skips += 1
                continue
            self.stats.system_states_created += 1
            self._verify_and_report(combo, combination_to_system_state(combo))
            if len(self.bugs) > bugs_before:
                return  # one witness per violating node state is enough

    def _verify_and_report(self, combo: Combination, system: SystemState) -> None:
        """Soundness-verify a preliminary violation; report it if valid.

        Fig. 9 lines 13-16: the a-posteriori check that makes LMC sound
        (§4.1).  With ``verify_soundness`` off (the Fig. 13
        "LMC-system-state" configuration) the violation is only counted —
        or, under ``collect_preliminary``, queued for the parallel
        verifier.  Wall time is moved from the enclosing ``system_states``
        bucket into ``soundness`` so the Fig. 13 phases stay disjoint.
        """
        if not self.config.verify_soundness:
            if (
                self.config.collect_preliminary
                and len(self.unverified) < self.config.max_collected_preliminary
            ):
                key = tuple(
                    (node, record.index) for node, record in sorted(combo.items())
                )
                if key not in self._unverified_keys:
                    self._unverified_keys.add(key)
                    self.unverified.append(dict(combo))
            return
        started = time.perf_counter()
        witness = self.verifier.is_state_sound(combo)
        if witness is None and self._symmetry is not None:
            # Orbit-aware fallback (docs/REDUCTION.md): the enumerated
            # representative of a violating orbit may fail replay while a
            # sibling — reached through differently-named nodes, so with a
            # differently-shaped predecessor DAG — carries the valid
            # ordering.  Confirming any sibling confirms the orbit; the
            # sibling's own (violating, by equivariance) system state is
            # reported so the witness replays against it.
            for variant in self._symmetry.orbit_variants(self.space, combo):
                witness = self.verifier.is_state_sound(variant)
                if witness is not None:
                    combo = variant
                    system = combination_to_system_state(variant)
                    break
        soundness_seconds = time.perf_counter() - started
        # The enclosing _check_new_state measures its whole wall time into the
        # "system_states" bucket; compensate so soundness time lands in its
        # own bucket only.
        self.stats.add_phase_time("soundness", soundness_seconds)
        self.stats.add_phase_time("system_states", -soundness_seconds)
        if witness is None:
            if self.config.reverify_rejected:
                self._cache_rejected(combo)
            return
        self._report_bug(system, witness)

    def _report_bug(self, system: SystemState, trace: Tuple[Event, ...]) -> None:
        """Record a *confirmed* bug with its witness total order (§4.1).

        Only soundness-verified violations reach here, so every report
        carries an executable trace — LMC's no-false-positives guarantee.
        With tracing on the confirmation also lands in the trace as a
        ``bug`` event.
        """
        self.stats.confirmed_bugs += 1
        if self.emitter.enabled:
            self.emitter.event(
                "bug",
                invariant=type(self.invariant).__name__,
                description=self.invariant.describe_violation(system),
                trace_length=len(trace),
            )
        self.bugs.append(
            BugReport(
                kind="invariant",
                description=self.invariant.describe_violation(system),
                violating_state=system,
                trace=trace,
                initial_state=self.initial_system,
            )
        )
        if self.config.stop_on_first_bug:
            raise _StopSearch("bug found", completed=False)

    def _cached_projection(self, node: NodeId, record: NodeStateRecord):
        """Memoised invariant projection of a node state (LMC-OPT, §4.2).

        The pairwise OPT enumerator re-reads projections quadratically
        often; caching by ``(node, record index)`` keeps projection cost
        linear in visited states.
        """
        key = (node, record.index)
        if key not in self._projection_cache:
            assert isinstance(self.invariant, DecomposableInvariant)
            self._projection_cache[key] = self.invariant.local_projection(
                node, record.state
            )
        return self._projection_cache[key]

    # -- reverify extension ------------------------------------------------------

    def _cache_rejected(self, combo: Combination) -> None:
        """Remember a rejected violation for later re-verification.

        The §4.2 completeness patch ("cache the system states in which an
        invariant is violated and reverify them after the changes into LS
        that affect them"); indexed by member record so
        :meth:`_reverify_affected` can find entries cheaply.  The cache is
        an LRU bounded by ``rejected_cache_limit`` — an eviction trades a
        sliver of the patched-back completeness for bounded memory on long
        online runs and is counted in ``rejected_cache_evictions``.
        """
        entry_index = self._rejected_next
        self._rejected_next += 1
        self._rejected_entries[entry_index] = dict(combo)
        for node, record in combo.items():
            self._rejected_index.setdefault((node, record.index), []).append(
                entry_index
            )
        limit = self.config.rejected_cache_limit
        if limit is not None and len(self._rejected_entries) > limit:
            self._rejected_entries.popitem(last=False)
            self.stats.rejected_cache_evictions += 1

    def _reverify_affected(self, record: NodeStateRecord) -> None:
        """Re-run soundness on cached rejections touching ``record`` (§4.2).

        Triggered when a new predecessor pointer lands on an existing node
        state: the new path may supply the event sequence an earlier
        rejection was missing.  Reverifying an entry marks it recently used;
        index lists drop references to entries the LRU has evicted.
        """
        indices = self._rejected_index.get((record.node, record.index))
        if not indices:
            return
        live = [index for index in indices if index in self._rejected_entries]
        self._rejected_index[(record.node, record.index)] = live
        for entry_index in list(live):
            combo = self._rejected_entries.get(entry_index)
            if combo is None:
                continue
            self._rejected_entries.move_to_end(entry_index)
            started = time.perf_counter()
            witness = self.verifier.is_state_sound(combo)
            self.stats.add_phase_time("soundness", time.perf_counter() - started)
            if witness is not None:
                del self._rejected_entries[entry_index]
                self._report_bug(combination_to_system_state(combo), witness)

    # -- bookkeeping ------------------------------------------------------------

    def _checking_seconds(self) -> float:
        """Seconds so far in the two checking phases (Fig. 13 buckets).

        Used to subtract checking time out of a round's wall time so the
        ``explore`` bucket holds pure exploration.
        """
        return self.stats.phase_seconds.get(
            "system_states", 0.0
        ) + self.stats.phase_seconds.get("soundness", 0.0)

    def _tick_budget(self) -> None:
        """Enforce the transition/state/time budgets (§5 bounded searches).

        Called before every handler execution; the wall clock is consulted
        only every ``_BUDGET_CHECK_INTERVAL`` executions to keep the hot
        path cheap.
        """
        executed = self.stats.transitions + self.stats.noop_executions
        budget = self.budget
        if (
            budget.max_transitions is not None
            and self.stats.transitions >= budget.max_transitions
        ):
            raise _StopSearch("transition budget exhausted", completed=False)
        if (
            budget.max_states is not None
            and self.space.total_states() >= budget.max_states
        ):
            raise _StopSearch("state budget exhausted", completed=False)
        if executed % _BUDGET_CHECK_INTERVAL == 0:
            if self.clock.out_of_time():
                raise _StopSearch("time budget exhausted", completed=False)
            self.metrics.pulse(self.explored_depth)

    def explored_depth(self) -> int:
        """Length of the longest combined event sequence explored so far."""
        return sum(self._node_max_depth.values())

    def _metric_gauges(self) -> Dict[str, float]:
        """Gauges joined onto every metrics sample (Figs. 11-12 quantities)."""
        return {
            "node_states": self.space.total_states(),
            "memory_bytes": self._retained_bytes + self.network.retained_bytes(),
        }

    def _frontier_size(self) -> int:
        """Pending executions the cursors have not reached yet.

        Sums, per node, the records the local-event sweep has not expanded
        plus — per stored message — the destination records it has not been
        delivered to.  An O(nodes + messages) walk, run only on the
        heartbeat cadence.
        """
        pending = 0
        for node in self.space.node_ids:
            store_len = len(self.space.store(node))
            pending += store_len - self._local_cursor.get(node, 0)
            for stored in self.network.for_destination(node):
                pending += max(0, store_len - stored.cursor)
        return pending

    def _heartbeat(
        self,
        depth: int,
        elapsed: float,
        metrics: Dict[str, float],
        force: bool = False,
    ) -> None:
        """Publish a registry heartbeat snapshot (docs/OBSERVABILITY.md).

        Runs on the metrics cadence only when a :class:`RunHandle` is
        attached, so plain runs never pay for it.  The snapshot carries the
        sampled counters plus live-only gauges (round, frontier) and the
        progress/ETA estimate fitted from the depth series so far.
        """
        handle = self.run_handle
        if handle is None:
            return
        snapshot: Dict[str, object] = dict(metrics)
        snapshot["depth"] = depth
        snapshot["elapsed_s"] = elapsed
        snapshot["round"] = self.round_number
        snapshot["frontier"] = self._frontier_size()
        snapshot["algorithm"] = self.checker.algorithm
        checkpointer = self.checker.checkpointer
        if checkpointer is not None and checkpointer.last_round is not None:
            snapshot["checkpoint"] = {
                "path": checkpointer.path,
                "round": checkpointer.last_round,
                "writes": checkpointer.writes,
            }
        points = [
            (sample.depth, sample.elapsed_s, sample.get("transitions"))
            for sample in self.series.samples
        ]
        points.append((depth, elapsed, float(self.stats.transitions)))
        estimate = estimate_progress(points, self.budget.max_depth)
        if estimate is not None:
            snapshot["progress"] = estimate.as_dict()
        if handle.heartbeat(snapshot, force=force) and self.coverage.enabled:
            handle.write_coverage(self.checker.coverage_report())


    def _heartbeat_now(self) -> None:
        """Publish a heartbeat right after a checkpoint write.

        Goes straight to :meth:`_heartbeat` with the current counters
        rather than through ``metrics.sample`` — a checkpoint must update
        the registry's last-checkpoint record without appending rows to
        the deterministic depth series.
        """
        if self.run_handle is not None:
            self._heartbeat(
                self.explored_depth(),
                self.clock.elapsed(),
                self.stats.snapshot(),
                force=True,
            )

    def _record_depth_sample(self, force: bool = False) -> None:
        """Sample counters via :class:`~repro.obs.metrics.RunMetrics`.

        Called at round boundaries; the registry decides whether the sample
        lands (depth grew, forced seed/end-of-run, or the trace cadence is
        due) — the logic that used to live ad hoc in this method.
        """
        self.metrics.sample(self.explored_depth(), force=force)
