"""The persistent worker process pool shared across checker phases.

PR 3 introduced a persistent :class:`ProcessPoolExecutor` for soundness
verification; parallel frontier exploration (docs/PERFORMANCE.md) reuses the
same workers for its per-round shard fan-out, so both phases amortize one
pool's start-up cost instead of each paying their own.  This module owns the
pool's lifecycle; the verification and exploration dispatchers only ever ask
for :func:`shared_executor` and call :func:`shutdown_worker_pool` on the
:class:`BrokenProcessPool` recovery path.

The pool is process-global and created lazily.  A worker-count change
rebuilds it; a rebuild of an *already broken* pool must not wait on its dead
workers (``shutdown(wait=True)`` can hang on a SIGKILLed worker), so the
rebuild path inspects the executor's broken flag and reuses the
``broken=True`` teardown in that case.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

_EXECUTOR: Optional[ProcessPoolExecutor] = None
_EXECUTOR_WORKERS = 0


def shared_executor(workers: int) -> ProcessPoolExecutor:
    """The process pool, created lazily and rebuilt on a worker-count change.

    When the existing pool is already broken (its ``_broken`` flag is set —
    a worker died since the last dispatch), the rebuild tears it down via the
    no-wait broken path instead of blocking on dead processes.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS
    if _EXECUTOR is not None and _EXECUTOR_WORKERS != workers:
        shutdown_worker_pool(broken=bool(getattr(_EXECUTOR, "_broken", False)))
    if _EXECUTOR is None:
        _EXECUTOR = ProcessPoolExecutor(max_workers=workers)
        _EXECUTOR_WORKERS = workers
    return _EXECUTOR


def shutdown_worker_pool(broken: bool = False) -> None:
    """Tear down the persistent pool (idempotent; re-created on next use).

    ``broken=True`` is the :class:`BrokenProcessPool` recovery path: the
    pool's workers are already dead or dying, so waiting on them can hang
    (and shutdown itself can raise mid-teardown), which would defeat the
    retry-once recovery in the dispatchers.  There we cancel what we can,
    don't wait, and swallow teardown errors — the pool object is dropped
    either way and the next use builds a fresh one.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS
    if _EXECUTOR is not None:
        if broken:
            try:
                _EXECUTOR.shutdown(wait=False, cancel_futures=True)
            except Exception:  # noqa: BLE001 - best-effort teardown of a dead pool
                pass
        else:
            _EXECUTOR.shutdown(wait=True)
        _EXECUTOR = None
        _EXECUTOR_WORKERS = 0


atexit.register(shutdown_worker_pool)
