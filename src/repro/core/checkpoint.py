"""Durable checkpoints of the local model checker (docs/CHECKPOINTS.md).

The monotonic abstraction makes LMC's state *worth* saving: ``LS`` and
``I+`` only ever grow, so everything a run has paid for — node-state
records with their predecessor DAG, the shared message log with per-message
cursors, the counters — remains valid input for more exploration.  This
module serializes that state into a versioned JSON envelope and restores it
into a fresh :class:`~repro.core.checker._ExplorationPass`, which enables
two features:

* **resume** — a run killed (or stopped by SIGTERM/budget) at a round
  boundary continues exactly where it stopped; because the serial sweep is
  deterministic and checkpoints are only written at round boundaries, the
  resumed run's final counters are byte-identical to an uninterrupted
  run's (modulo the rebuildable caches listed below);
* **depth extension** — a *completed* depth-``d`` run re-seeds a new run
  to depth ``d' > d`` that explores only the newly unblocked frontier (the
  depth-deferred pairs the sweeps recorded), instead of the whole prefix.

What is serialized: every ``LS_n`` record (state value, hashes, depth
metadata, history, predecessor links with their events, seed/discard/crash
flags), the full ``I+`` log (message values, hashes, cursors, deferred
pairs, fault-minted duplicate flags), all exploration counters and phase
timers, the per-node sweep and fault cursors (including the drop sweep's
cursor/deferred pairs and the duplication cursor), the depth series,
confirmed bugs, the collected-unverified
and rejected-combination caches, symmetry-reduction orbit keys, and the
widening/prior-pass context of the enclosing run.

What is deliberately *not* serialized, because it is derived state rebuilt
on demand: the soundness verifier's sequence/replay memos (cold memos only
change ``*_cache_hits`` counters, never verdicts — the same contract the
bench's cached-vs-uncached legs rely on), the projection cache and index
(recomputed from the restored records in discovery order), the
delivery-event-hash memo, the symmetry renamed-hash cache, and the
parallel-exploration speculator (a fresh one re-ships the full ``I+`` log
through its ordinary sync handshake).

Model values round-trip through :mod:`repro.persistence`'s structural
codec — the same closed class registry and versioned-envelope discipline as
the bug corpus, so deserialization never executes arbitrary content.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import signal
from typing import Any, Dict, List, Optional

from repro.core.records import PredecessorLink
from repro.model.hashing import content_hash
from repro.persistence import (
    ClassRegistry,
    bug_from_dict,
    bug_to_dict,
    decode_event,
    decode_system_state,
    decode_value,
    encode_event,
    encode_system_state,
    encode_value,
    load_envelope,
    registry_for_protocol,
    save_envelope,
)
from repro.stats.counters import ExplorationStats
from repro.stats.series import DepthSample

#: On-disk format version; bump on any incompatible payload change.
#: Version 2 added the fault-scheduler extensions of docs/FAULTS.md: the
#: drop-sweep cursor/deferred state, the duplication cursor, the per-message
#: fault-minted ``duplicate`` flag, and drop/duplicate predecessor events.
CHECKPOINT_FORMAT_VERSION = 2
#: Envelope kind tag (see :func:`repro.persistence.save_envelope`).
CHECKPOINT_KIND = "lmc-checkpoint"

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointMismatch",
    "Checkpointer",
    "apply_stats",
    "decode_initial_system",
    "fingerprint",
    "fingerprint_fields",
    "load_checkpoint",
    "registry_for_protocol",
    "restore_pass",
    "save_checkpoint",
    "snapshot_pass",
    "verify_fingerprint",
]


class CheckpointError(ValueError):
    """A checkpoint payload is unreadable or structurally invalid."""


class CheckpointMismatch(CheckpointError):
    """The checkpoint was written under an incompatible configuration.

    Raised loudly instead of resuming: restoring a snapshot under a
    different protocol, invariant, initial state or checker configuration
    would silently produce counters and verdicts that belong to neither
    run.
    """


# -- configuration fingerprint ---------------------------------------------------


def _instance_config(obj: Any) -> Dict[str, str]:
    """Stable view of an object's constructor-derived attributes."""
    return {name: repr(value) for name, value in sorted(vars(obj).items())}


def fingerprint_fields(
    protocol: Any, invariant: Any, config: Any, initial_system: Any
) -> Dict[str, Any]:
    """The facts a resume must agree on, as a JSON-ready dictionary.

    Protocols and invariants are regular classes, not dataclasses, so they
    contribute their class identity plus a ``repr`` of every instance
    attribute (plain configuration values by construction).  The initial
    system contributes per-node content hashes — a pass seeded with a
    crafted live snapshot (the §5.5 scenarios) must not resume a run
    seeded from the protocol boot states.  Every :class:`LMCConfig` field
    participates except ``checkpoint_every_rounds``: the cadence decides
    *when* snapshots are written, never what is explored, so resuming
    under a different cadence (or none) is sound.
    """
    return {
        "protocol": f"{type(protocol).__module__}.{type(protocol).__qualname__}",
        "protocol_config": _instance_config(protocol),
        "invariant": f"{type(invariant).__module__}.{type(invariant).__qualname__}",
        "invariant_config": _instance_config(invariant),
        "initial_system": sorted(
            (repr(node), content_hash(state))
            for node, state in initial_system.items()
        ),
        "config": {
            field.name: repr(getattr(config, field.name))
            for field in dataclasses.fields(config)
            if field.name != "checkpoint_every_rounds"
        },
    }


def fingerprint(
    protocol: Any, invariant: Any, config: Any, initial_system: Any
) -> str:
    """SHA-256 digest of :func:`fingerprint_fields` (canonical JSON)."""
    canonical = json.dumps(
        fingerprint_fields(protocol, invariant, config, initial_system),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- counters --------------------------------------------------------------------


def _encode_stats(stats: ExplorationStats) -> Dict[str, Any]:
    """All counter fields plus the phase timers, as plain JSON."""
    return dataclasses.asdict(stats)


def apply_stats(stats: ExplorationStats, encoded: Dict[str, Any]) -> None:
    """Restore counters *in place* — the block is shared with the verifier
    and metrics objects already bound to it."""
    for field in dataclasses.fields(ExplorationStats):
        if field.name == "phase_seconds":
            stats.phase_seconds = dict(encoded["phase_seconds"])
        else:
            setattr(stats, field.name, encoded[field.name])


# -- pass snapshot ---------------------------------------------------------------


def _encode_record(record: Any) -> Dict[str, Any]:
    return {
        "state": encode_value(record.state),
        "hash": record.hash,
        "depth": record.depth,
        "local_depth": record.local_depth,
        "history": sorted(record.history),
        "crashes": record.crashes,
        "crashed": record.crashed,
        "seed": record.seed,
        "discarded": record.discarded,
        "state_size": record.state_size,
        "predecessors": [
            {
                "prev_hash": link.prev_hash,
                "event": encode_event(link.event),
                "event_hash": link.event_hash,
                "consumed_hash": link.consumed_hash,
                "generated_hashes": list(link.generated_hashes),
            }
            for link in record.predecessors
        ],
    }


def _combo_rows(combo: Dict[Any, Any]) -> List[List[Any]]:
    """A combination as sorted ``[node, record index]`` rows."""
    return [[node, record.index] for node, record in sorted(combo.items())]


def snapshot_pass(
    pass_: Any,
    reason: str,
    pass_completed: bool = False,
    pass_reason: str = "",
    elapsed: Optional[float] = None,
) -> Dict[str, Any]:
    """Serialize one exploration pass — plus its run context — to JSON.

    Must be called at a round boundary (or after the pass completed): the
    byte-identical-resume contract holds because the next round replays
    from exactly this state.  ``elapsed`` overrides the clock reading, for
    round-trip tests that need two snapshots of the same state to compare
    equal.
    """
    checker = pass_.checker
    budget = pass_.budget
    symmetry = None
    if pass_._symmetry is not None:
        symmetry = {
            "orbit_hits": pass_._symmetry.orbit_hits,
            "seen": sorted(
                [list(pair) for pair in key] for key in pass_._symmetry._seen
            ),
        }
    nodes = pass_.space.node_ids
    return {
        "fingerprint": fingerprint(
            checker.protocol, checker.invariant, checker.config, pass_.initial_system
        ),
        "algorithm": checker.algorithm,
        "reason": reason,
        "pass_completed": pass_completed,
        "pass_reason": pass_reason,
        "budget": {
            "max_depth": budget.max_depth,
            "max_seconds": budget.max_seconds,
            "max_transitions": budget.max_transitions,
            "max_states": budget.max_states,
        },
        "elapsed_s": pass_.clock.elapsed() if elapsed is None else elapsed,
        "initial_system": encode_system_state(pass_.initial_system),
        "run": {
            "bound": pass_.local_event_bound,
            "prior_stats": _encode_stats(pass_.prior_stats),
            "prior_bugs": [bug_to_dict(bug) for bug in pass_.prior_bugs],
        },
        "pass": {
            "round_number": pass_.round_number,
            "blocked_by_bound": pass_.blocked_by_bound,
            "blocked_by_depth": pass_._blocked_by_depth,
            "crashes_executed": pass_._crashes_executed,
            "drops_executed": pass_._drops_executed,
            "drop_cursor": sorted(
                [seq, cursor] for seq, cursor in pass_._drop_cursor.items()
            ),
            "drop_deferred": sorted(
                [seq, sorted(indexes)]
                for seq, indexes in pass_._drop_deferred.items()
                if indexes
            ),
            "dup_seq_cursor": pass_._dup_seq_cursor,
            "retained_bytes": pass_._retained_bytes,
            "stats": _encode_stats(pass_.stats),
            "stores": [
                [
                    node,
                    {
                        "version": pass_.space.store(node).version,
                        "records": [
                            _encode_record(record)
                            for record in pass_.space.store(node).records
                        ],
                    },
                ]
                for node in nodes
            ],
            "network": {
                "suppressed_duplicates": pass_.network.suppressed_duplicates,
                "retained_bytes": pass_.network.retained_bytes(),
                "messages": [
                    {
                        "message": encode_value(stored.message),
                        "hash": stored.hash,
                        "cursor": stored.cursor,
                        "deferred": sorted(stored.deferred),
                        "duplicate": stored.duplicate,
                    }
                    for stored in pass_.network.messages_since(0)
                ],
            },
            "local_cursor": [[node, pass_._local_cursor.get(node, 0)] for node in nodes],
            "fault_cursor": [[node, pass_._fault_cursor.get(node, 0)] for node in nodes],
            "local_deferred": [
                [node, sorted(pass_._local_deferred.get(node, ()))] for node in nodes
            ],
            "fault_deferred": [
                [node, sorted(pass_._fault_deferred.get(node, ()))] for node in nodes
            ],
            "node_max_depth": [
                [node, pass_._node_max_depth[node]]
                for node in nodes
                if node in pass_._node_max_depth
            ],
            "series": [
                [sample.depth, sample.elapsed_s, sample.metrics]
                for sample in pass_.series.samples
            ],
            "bugs": [bug_to_dict(bug) for bug in pass_.bugs],
            "unverified": [_combo_rows(combo) for combo in pass_.unverified],
            "rejected": {
                "next": pass_._rejected_next,
                "entries": [
                    [entry_index, _combo_rows(combo)]
                    for entry_index, combo in pass_._rejected_entries.items()
                ],
            },
            "symmetry": symmetry,
        },
    }


def restore_pass(
    pass_: Any, payload: Dict[str, Any], registry: Optional[ClassRegistry] = None
) -> None:
    """Populate a freshly constructed pass from a checkpoint payload.

    The pass must be newly built (empty stores/network) against the same
    protocol, invariant and config the payload fingerprints — callers go
    through :meth:`LocalModelChecker.resume` / ``extend_depth``, which
    enforce that.  Restores in place: the verifier, metrics and reducer
    objects already bound to the pass's stats/space keep working on the
    reinstated state.
    """
    if registry is None:
        registry = registry_for_protocol(pass_.checker.protocol)
    data = payload["pass"]

    for node, store_data in data["stores"]:
        store = pass_.space.store(node)
        for row in store_data["records"]:
            record = store.restore_record(
                state=decode_value(row["state"], registry),
                state_hash=row["hash"],
                depth=row["depth"],
                local_depth=row["local_depth"],
                history=frozenset(row["history"]),
                crashes=row["crashes"],
                crashed=row["crashed"],
                seed=row["seed"],
                discarded=row["discarded"],
                state_size=row["state_size"],
            )
            for link_row in row["predecessors"]:
                record.add_predecessor(
                    PredecessorLink(
                        prev_hash=link_row["prev_hash"],
                        event=decode_event(link_row["event"], registry),
                        event_hash=link_row["event_hash"],
                        consumed_hash=link_row["consumed_hash"],
                        generated_hashes=tuple(link_row["generated_hashes"]),
                    )
                )
            if record.seed:
                pass_._seed_records[node] = record
        store.finalize_restore(store_data["version"])

    network = data["network"]
    pass_.network.restore(
        (
            (
                decode_value(row["message"], registry),
                row["hash"],
                row["cursor"],
                row["deferred"],
                row["duplicate"],
            )
            for row in network["messages"]
        ),
        suppressed_duplicates=network["suppressed_duplicates"],
        retained_bytes=network["retained_bytes"],
    )

    apply_stats(pass_.stats, data["stats"])
    pass_.round_number = data["round_number"]
    pass_.blocked_by_bound = data["blocked_by_bound"]
    pass_._blocked_by_depth = data["blocked_by_depth"]
    pass_._crashes_executed = data["crashes_executed"]
    pass_._drops_executed = data["drops_executed"]
    pass_._drop_cursor = {seq: cursor for seq, cursor in data["drop_cursor"]}
    pass_._drop_deferred = {
        seq: set(indexes) for seq, indexes in data["drop_deferred"] if indexes
    }
    pass_._dup_seq_cursor = data["dup_seq_cursor"]
    pass_._retained_bytes = data["retained_bytes"]
    pass_._local_cursor = {node: cursor for node, cursor in data["local_cursor"]}
    pass_._fault_cursor = {node: cursor for node, cursor in data["fault_cursor"]}
    pass_._local_deferred = {
        node: set(indexes) for node, indexes in data["local_deferred"] if indexes
    }
    pass_._fault_deferred = {
        node: set(indexes) for node, indexes in data["fault_deferred"] if indexes
    }
    pass_._node_max_depth = {node: depth for node, depth in data["node_max_depth"]}

    for depth, elapsed_s, metrics in data["series"]:
        pass_.series.samples.append(DepthSample(depth, elapsed_s, dict(metrics)))
    if pass_.series.samples:
        # Resumed sampling must behave as if the restored samples were its
        # own: only genuinely new depths append rows.
        pass_.metrics._last_depth = pass_.series.samples[-1].depth

    pass_.bugs.extend(bug_from_dict(item, registry) for item in data["bugs"])

    for combo_rows in data["unverified"]:
        combo = {
            node: pass_.space.store(node).records[index]
            for node, index in combo_rows
        }
        pass_._unverified_keys.add(tuple((node, index) for node, index in combo_rows))
        pass_.unverified.append(combo)

    rejected = data["rejected"]
    pass_._rejected_next = rejected["next"]
    for entry_index, combo_rows in rejected["entries"]:
        pass_._rejected_entries[entry_index] = {
            node: pass_.space.store(node).records[index]
            for node, index in combo_rows
        }
    # Index lists are kept in insertion (entry-number) order — the order the
    # lazily-pruned live lists of the original run preserve.
    for entry_index, combo_rows in sorted(rejected["entries"]):
        for node, index in combo_rows:
            pass_._rejected_index.setdefault((node, index), []).append(entry_index)

    symmetry = data["symmetry"]
    if (symmetry is not None) != (pass_._symmetry is not None):
        raise CheckpointMismatch(
            "symmetry reducer presence differs between the checkpoint and "
            "this configuration"
        )
    if symmetry is not None:
        pass_._symmetry.orbit_hits = symmetry["orbit_hits"]
        pass_._symmetry._seen = {
            tuple(tuple(pair) for pair in key) for key in symmetry["seen"]
        }

    # Derived caches are rebuilt, not restored: projections in discovery
    # order (exactly the order seeding + integration noted them), verifier
    # memos cold (cache-hit counters only), speculator fresh (full-log
    # resync on first dispatch).
    if pass_._projection_index is not None:
        for node in pass_.space.node_ids:
            for record in pass_.space.store(node).records:
                if not record.crashed:
                    pass_._projection_index.note(
                        node, record, pass_._cached_projection(node, record)
                    )

    pass_._restored = True


# -- files -----------------------------------------------------------------------


def save_checkpoint(path: str, payload: Dict[str, Any]) -> None:
    """Write a checkpoint atomically (see :func:`repro.fsio.atomic_write_json`).

    Readers observe either the previous complete checkpoint or the new one
    — a kill mid-write never leaves a truncated file.  Unlike the bug
    corpus, checkpoints are machine artifacts rewritten on every cadence
    round, so they are stored compact (``indent=None``): on the Fig. 10
    d=6 snapshot that is ~3x smaller and cuts the encode time to roughly a
    tenth.  Key order stays sorted, keeping the bytes canonical for the
    round-trip property test.
    """
    save_envelope(
        path, CHECKPOINT_KIND, CHECKPOINT_FORMAT_VERSION, payload, indent=None
    )


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read a checkpoint written by :func:`save_checkpoint`, strictly."""
    try:
        return load_envelope(path, CHECKPOINT_KIND, CHECKPOINT_FORMAT_VERSION)
    except ValueError as exc:
        raise CheckpointError(str(exc)) from None


def verify_fingerprint(
    payload: Dict[str, Any], protocol: Any, invariant: Any, config: Any, initial_system: Any
) -> None:
    """Refuse loudly when the payload belongs to a different configuration."""
    expected = fingerprint(protocol, invariant, config, initial_system)
    found = payload.get("fingerprint")
    if found != expected:
        raise CheckpointMismatch(
            "checkpoint fingerprint mismatch: the snapshot was written under "
            "a different protocol/invariant/config/initial-state combination "
            f"(checkpoint {str(found)[:12]}…, this run {expected[:12]}…); "
            "refusing to resume"
        )


def decode_initial_system(payload: Dict[str, Any], protocol: Any):
    """The checkpointed initial system state, decoded through the protocol's
    registry."""
    registry = registry_for_protocol(protocol)
    return decode_system_state(payload["initial_system"], registry), registry


# -- write policy ----------------------------------------------------------------


class Checkpointer:
    """When and where a run writes checkpoints.

    Attach one to a :class:`~repro.core.checker.LocalModelChecker`; the
    pass consults :meth:`due` at every round boundary and always writes a
    final snapshot when a pass completes.  ``every_rounds`` defaults to
    ``LMCConfig.checkpoint_every_rounds`` when left ``None``.

    SIGTERM handling is cooperative: the handler only sets a flag, the
    sweep finishes its current round, the boundary snapshot is written,
    and the run stops with ``"interrupted (checkpoint written)"``.  The
    handler is installed around :meth:`LocalModelChecker.run` only in the
    main thread (``signal`` refuses elsewhere; the checkpointer then
    simply never sees a SIGTERM flag).
    """

    def __init__(self, path: str, every_rounds: Optional[int] = None):
        self.path = path
        self.every_rounds = every_rounds
        #: Set by the SIGTERM handler; checked at round boundaries.
        self.stop_requested = False
        #: Round number of the last snapshot written, for heartbeats/status.
        self.last_round: Optional[int] = None
        self.writes = 0
        self._previous_handler: Any = None
        self._installed = False

    # -- signal plumbing ---------------------------------------------------

    def install(self) -> None:
        """Install the cooperative SIGTERM handler (main thread only)."""
        def _handle(signum: int, frame: Any) -> None:
            del signum, frame
            self.stop_requested = True

        try:
            self._previous_handler = signal.signal(signal.SIGTERM, _handle)
            self._installed = True
        except ValueError:
            # Not the main thread: cadence and final checkpoints still work.
            self._installed = False

    def uninstall(self) -> None:
        if self._installed:
            signal.signal(signal.SIGTERM, self._previous_handler)
            self._installed = False

    # -- policy ------------------------------------------------------------

    def cadence(self, config: Any) -> Optional[int]:
        """The effective round cadence (explicit, else the config knob)."""
        if self.every_rounds is not None:
            return self.every_rounds
        return config.checkpoint_every_rounds

    def due(self, round_number: int, config: Any) -> bool:
        """Should the pass write a snapshot at this round boundary?"""
        if self.stop_requested:
            return True
        every = self.cadence(config)
        return every is not None and round_number % every == 0

    def write(self, payload: Dict[str, Any]) -> None:
        """Persist one snapshot and record it for heartbeat reporting."""
        save_checkpoint(self.path, payload)
        self.writes += 1
        self.last_round = payload["pass"]["round_number"]
