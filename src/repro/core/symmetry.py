"""Symmetry reduction of system-state enumeration (docs/REDUCTION.md).

Many protocols have interchangeable nodes — Paxos acceptors that hold no
proposal, 2PC participants scripted with the same vote, leaves of a
broadcast tree — and verdicts that are invariant under renaming them.  LMC
still enumerates every permutation of their states into anchored system
states.  This module canonicalises each candidate combination to a
representative of its *orbit* under the protocol-declared symmetry group,
so each orbit is invariant-checked (and, on violation, soundness-verified)
once.

The group is declared, not discovered: a protocol's optional
``symmetry_classes()`` hook (:func:`repro.protocols.common
.declared_symmetry_classes`) names tuples of interchangeable node ids, and
the group is the product of the full symmetric groups over each class.
Declaring a class asserts *equivariance* — renaming the members everywhere
(initial states, handler behaviour, invariant verdicts) permutes executions
without changing observable outcomes.  Under that assertion the reduction
preserves verdicts: every skipped combination has an orbit sibling that was
(or will be) enumerated by the symmetric exploration, so a violation is
never lost, only reported through its canonical representative.  The
soundness argument, and the one residual timing conservatism it inherits
from the paper's own reverify gap, are spelled out in docs/REDUCTION.md.

Everything here is gated: with ``LMCConfig.symmetry_reduction`` off (the
default) no :class:`SymmetryReducer` is constructed and the checker is
byte-identical to a build without this module.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.model.hashing import content_hash
from repro.model.types import NodeId
from repro.protocols.common import declared_symmetry_classes, renamed_state

#: Hard cap on composed group size: the per-class factorials multiply, and a
#: pathological declaration (say, ten interchangeable nodes) must not turn
#: every canonicalisation into a 3.6M-permutation scan.  Classes are dropped
#: from the end of the declaration until the product fits — a smaller group
#: only weakens the reduction, never its soundness.
_GROUP_CAP = 720


def _class_permutations(members: Tuple[NodeId, ...]) -> List[Dict[NodeId, NodeId]]:
    """All renamings of one class, as minimal (moved-ids-only) mappings."""
    perms = []
    for image in itertools.permutations(members):
        mapping = {
            src: dst for src, dst in zip(members, image) if src != dst
        }
        perms.append(mapping)
    return perms


def build_group(
    classes: Tuple[Tuple[NodeId, ...], ...],
    cap: int = _GROUP_CAP,
) -> Tuple[Dict[NodeId, NodeId], ...]:
    """The symmetry group as node renamings: the product over the classes.

    Element 0 is always the identity (the empty mapping).  Classes whose
    factorial blow-up would push the composed group past ``cap`` are
    dropped, deterministically, from the end of the declaration.
    """
    kept: List[List[Dict[NodeId, NodeId]]] = []
    size = 1
    for members in classes:
        perms = _class_permutations(members)
        if size * len(perms) > cap:
            continue
        size *= len(perms)
        kept.append(perms)
    group: List[Dict[NodeId, NodeId]] = []
    for parts in itertools.product(*kept) if kept else ((),):
        mapping: Dict[NodeId, NodeId] = {}
        for part in parts:
            mapping.update(part)
        group.append(mapping)
    # Identity first: canonicalisation starts from the unrenamed key, and
    # orbit-variant search skips element 0.
    group.sort(key=lambda mapping: (len(mapping), sorted(mapping.items())))
    return tuple(group)


class SymmetryReducer:
    """Orbit canonicalisation of system-state combinations.

    One reducer serves one exploration pass.  It holds:

    * the composed symmetry ``group`` (identity first);
    * a renamed-hash cache — ``content_hash(rename(state, π))`` keyed by
      ``(node, record index, group index)``, with the identity element
      answered by the record's stored hash for free;
    * the set of canonical orbit keys already enumerated this pass.

    A combination's **orbit key** is the minimum, over the group, of the
    sorted tuple of ``(π(node), hash(rename(state, π)))`` pairs.  Two
    combinations get equal keys iff some group element maps one onto the
    other (modulo the vanishing probability of a content-hash collision),
    so first-occurrence filtering on the key enumerates exactly one member
    per orbit.
    """

    __slots__ = (
        "protocol",
        "classes",
        "group",
        "_renamed_hash",
        "_seen",
        "orbit_hits",
    )

    def __init__(
        self,
        protocol: Any,
        classes: Tuple[Tuple[NodeId, ...], ...],
        cap: int = _GROUP_CAP,
    ):
        self.protocol = protocol
        self.classes = classes
        self.group = build_group(classes, cap)
        self._renamed_hash: Dict[Tuple[NodeId, int, int], int] = {}
        self._seen: set = set()
        #: Orbit keys that came back already seen (== the checker's
        #: ``symmetry_skips``, kept here too for the ``reduction`` event).
        self.orbit_hits = 0

    @classmethod
    def for_pass(cls, pass_: Any) -> Optional["SymmetryReducer"]:
        """A reducer when the config and the protocol both enable one.

        Mirrors ``RoundSpeculator.for_pass``: with the knob off — or a
        protocol that declares no (usable) symmetry classes — the pass
        carries ``None`` and pays nothing.
        """
        if not pass_.config.symmetry_reduction:
            return None
        classes = declared_symmetry_classes(pass_.protocol)
        if not classes:
            return None
        reducer = cls(pass_.protocol, classes)
        reducer.restrict_to_stabilizer(pass_.initial_system)
        if len(reducer.group) <= 1:
            return None
        return reducer

    def restrict_to_stabilizer(self, initial_system: Any) -> None:
        """Keep only group elements that map the seeded snapshot onto itself.

        The hook speaks for the protocol's own uniform boot states, but a
        pass may be seeded with a crafted live snapshot (``run(initial)`` —
        the §5.5 experiment starts from an asymmetric partial-choice state).
        Renaming is only an execution symmetry from states the renaming
        fixes, so the group is cut down to the snapshot's stabilizer: π
        survives iff ``rename(initial[n], π) == initial[π(n)]`` for every
        node.  Stabilizers are subgroups, so closure (and the soundness
        argument built on it) is preserved; in the worst case the group
        collapses to the identity and ``for_pass`` disables the reducer.
        """
        kept: List[Dict[NodeId, NodeId]] = []
        for mapping in self.group:
            if not mapping:
                kept.append(mapping)
                continue
            fixes = all(
                renamed_state(self.protocol, state, mapping)
                == initial_system.get(mapping.get(node, node))
                for node, state in initial_system.items()
            )
            if fixes:
                kept.append(mapping)
        self.group = tuple(kept)

    # -- canonicalisation --------------------------------------------------

    def _hash_under(self, record: Any, index: int, mapping: Dict[NodeId, NodeId]) -> int:
        """Content hash of ``record.state`` renamed by group element ``index``."""
        if not mapping:
            return record.hash
        key = (record.node, record.index, index)
        cached = self._renamed_hash.get(key)
        if cached is None:
            cached = content_hash(renamed_state(self.protocol, record.state, mapping))
            self._renamed_hash[key] = cached
        return cached

    def orbit_key(self, combo: Dict[NodeId, Any]) -> Tuple[Tuple[int, int], ...]:
        """The canonical key of ``combo``'s orbit (minimum over the group)."""
        best: Optional[Tuple[Tuple[int, int], ...]] = None
        for index, mapping in enumerate(self.group):
            key = tuple(
                sorted(
                    (mapping.get(node, node), self._hash_under(record, index, mapping))
                    for node, record in combo.items()
                )
            )
            if best is None or key < best:
                best = key
        assert best is not None
        return best

    def first_occurrence(self, combo: Dict[NodeId, Any]) -> bool:
        """True when no member of ``combo``'s orbit was enumerated before.

        A False return means an orbit sibling already went through invariant
        checking this pass — the caller skips the combination and counts a
        ``symmetry_skip``.
        """
        key = self.orbit_key(combo)
        if key in self._seen:
            self.orbit_hits += 1
            return False
        self._seen.add(key)
        return True

    # -- orbit-aware soundness fallback ------------------------------------

    def orbit_variants(
        self, space: Any, combo: Dict[NodeId, Any]
    ) -> Iterator[Dict[NodeId, Any]]:
        """Orbit siblings of ``combo`` whose records all exist in ``LS``.

        Used when the enumerated representative of a violating orbit fails
        soundness verification: a sibling reached through differently-named
        nodes may carry the valid event ordering (exploration is equivariant
        *eventually*, not at every intermediate serial moment).  Siblings
        with members not (yet) discovered are silently skipped.
        """
        for index, mapping in enumerate(self.group):
            if not mapping:
                continue
            variant: Dict[NodeId, Any] = {}
            complete = True
            for node, record in combo.items():
                target = mapping.get(node, node)
                renamed_hash = self._hash_under(record, index, mapping)
                sibling = space.store(target).lookup(renamed_hash)
                if sibling is None or sibling.discarded or sibling.crashed:
                    complete = False
                    break
                variant[target] = sibling
            if complete and variant != combo:
                yield variant

    # -- observability -----------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Counters for the pass-end ``reduction`` trace event."""
        return {
            "group_size": len(self.group),
            "symmetry_classes": len(self.classes),
            "orbits_enumerated": len(self._seen),
            "orbit_hits": self.orbit_hits,
            "renamed_hashes_cached": len(self._renamed_hash),
        }
