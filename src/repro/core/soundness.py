"""A-posteriori soundness verification (§4.1 ``isStateSound`` / ``isSequenceValid``).

LMC's Cartesian system states may be invalid — combinations of node states
that no real run produces.  When an invariant is violated on one, this module
decides whether the combination is *valid*: it enumerates, per node, the
event sequences that could have led from the live state to that node's state
(by following predecessor pointers), and searches the cross product for one
combination whose events admit a valid total order.

The replay follows the paper's efficient implementation: an event is
represented by the hash of the message it consumes (network events) and the
hashes of the messages it generates; replay then reduces to integer
bookkeeping on a multiset ``net`` of generated-message hashes:

1. a local event is always enabled; a network event is enabled if its
   consumed hash is in ``net``;
2. executing pops the event and, for network events, removes the consumed
   hash from ``net``;
3. the event's generated hashes are added to ``net``.

Greedy selection of *any* enabled event is sufficient (§4.1: "It actually
does not matter which enabled event is selected") — the proof sketch is that
executing an enabled event never disables another node's enabled event
(messages are only ever added for others), so enabled events persist and the
greedy order is maximal.

Deviations from the paper, both explicit and bounded:

* self-referencing predecessor links are ignored (the paper does the same);
* predecessor-path enumeration walks *simple* paths (no repeated state on a
  path) and is capped by the configured limits; a capped search that found no
  valid order reports "inconclusive", which the checker treats as invalid
  (no bug reported), mirroring the paper's favour-simplicity stance.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.records import LocalStateSpace, NodeStateRecord, PredecessorLink
from repro.model.events import Event
from repro.model.types import NodeId
from repro.stats.counters import ExplorationStats


class SequenceStep:
    """One event of a node sequence, in hash form plus the original event."""

    __slots__ = ("event", "consumed_hash", "generated_hashes")

    def __init__(
        self,
        event: Event,
        consumed_hash: Optional[int],
        generated_hashes: Tuple[int, ...],
    ):
        self.event = event
        self.consumed_hash = consumed_hash
        self.generated_hashes = generated_hashes

    @property
    def is_network(self) -> bool:
        """True when this step consumes a message."""
        return self.consumed_hash is not None


#: One node's candidate event sequence, oldest event first.
NodeSequence = Tuple[SequenceStep, ...]


class SoundnessVerifier:
    """Validates system states against the predecessor structure in ``LS``."""

    def __init__(
        self,
        space: LocalStateSpace,
        stats: ExplorationStats,
        max_sequences_per_node: Optional[int] = None,
        max_combinations: Optional[int] = None,
    ):
        self._space = space
        self._stats = stats
        self._max_sequences = max_sequences_per_node
        self._max_combinations = max_combinations

    # -- public API -----------------------------------------------------------

    def is_state_sound(
        self, records: Dict[NodeId, NodeStateRecord]
    ) -> Optional[Tuple[Event, ...]]:
        """Search for a valid total order realising this combination.

        ``records`` maps every node to the node-state record of the candidate
        system state.  Returns the witness event sequence (a valid total
        order over all nodes' events) when the state is valid, else ``None``.
        """
        self._stats.soundness_calls += 1
        per_node: List[Tuple[NodeId, List[NodeSequence]]] = []
        for node in sorted(records):
            sequences = self._enumerate_sequences(records[node])
            if not sequences:
                # No acyclic path reaches this state: with the prototype's
                # simplifications the state cannot be validated.
                return None
            per_node.append((node, sequences))

        combinations = 0
        for combo in self._combinations(per_node):
            combinations += 1
            if (
                self._max_combinations is not None
                and combinations > self._max_combinations
            ):
                return None
            self._stats.soundness_sequences += 1
            witness = replay_sequences(combo)
            if witness is not None:
                return witness
        return None

    # -- sequence enumeration ------------------------------------------------

    def _enumerate_sequences(self, record: NodeStateRecord) -> List[NodeSequence]:
        """All simple predecessor paths from the live state to ``record``.

        Walks the predecessor DAG backwards; a path never revisits a state
        hash (simple paths) and self-referencing links are skipped, per the
        paper's simplification.  Truncated at ``max_sequences_per_node``.
        """
        sequences: List[NodeSequence] = []
        store = self._space.store(record.node)

        def walk(current: NodeStateRecord, suffix: List[SequenceStep], seen: set) -> bool:
            """Extend paths backwards; returns False when the cap is hit."""
            if current.seed:
                # The live/seed state: the suffix, reversed, is a complete
                # sequence from the live state to the target record.
                sequences.append(tuple(reversed(suffix)))
                return (
                    self._max_sequences is None
                    or len(sequences) < self._max_sequences
                )
            for link in current.predecessors:
                if link.prev_hash is None or link.prev_hash == current.hash:
                    continue  # self-reference (§4.2) or defensive None
                if link.prev_hash in seen:
                    continue  # keep paths simple
                previous = store.lookup(link.prev_hash)
                if previous is None:
                    continue
                suffix.append(
                    SequenceStep(link.event, link.consumed_hash, link.generated_hashes)
                )
                seen.add(link.prev_hash)
                keep_going = walk(previous, suffix, seen)
                seen.discard(link.prev_hash)
                suffix.pop()
                if not keep_going:
                    return False
            return True

        walk(record, [], {record.hash})
        return sequences

    # -- combination enumeration -------------------------------------------------

    @staticmethod
    def _combinations(
        per_node: Sequence[Tuple[NodeId, List[NodeSequence]]]
    ) -> Iterator[Dict[NodeId, NodeSequence]]:
        """Cross product of per-node sequences, lazily."""

        def recurse(i: int, chosen: Dict[NodeId, NodeSequence]):
            if i == len(per_node):
                yield dict(chosen)
                return
            node, sequences = per_node[i]
            for sequence in sequences:
                chosen[node] = sequence
                yield from recurse(i + 1, chosen)
            chosen.pop(node, None)

        yield from recurse(0, {})


def replay_sequences(
    sequences: Dict[NodeId, NodeSequence]
) -> Optional[Tuple[Event, ...]]:
    """The ``isSequenceValid`` greedy replay over message hashes.

    Returns the total order of events (as a tuple) when every node's sequence
    drains, else ``None``.
    """
    pointers: Dict[NodeId, int] = {node: 0 for node in sequences}
    net: Dict[int, int] = {}
    order: List[Event] = []
    total = sum(len(sequence) for sequence in sequences.values())
    nodes = sorted(sequences)

    executed = 0
    progress = True
    while progress:
        progress = False
        for node in nodes:
            sequence = sequences[node]
            pointer = pointers[node]
            while pointer < len(sequence):
                step = sequence[pointer]
                if step.is_network:
                    available = net.get(step.consumed_hash, 0)
                    if available == 0:
                        break
                    if available == 1:
                        del net[step.consumed_hash]
                    else:
                        net[step.consumed_hash] = available - 1
                for generated in step.generated_hashes:
                    net[generated] = net.get(generated, 0) + 1
                order.append(step.event)
                pointer += 1
                executed += 1
                progress = True
            pointers[node] = pointer
    if executed == total:
        return tuple(order)
    return None
