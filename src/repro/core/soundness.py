"""A-posteriori soundness verification (§4.1 ``isStateSound`` / ``isSequenceValid``).

LMC's Cartesian system states may be invalid — combinations of node states
that no real run produces.  When an invariant is violated on one, this module
decides whether the combination is *valid*: it enumerates, per node, the
event sequences that could have led from the live state to that node's state
(by following predecessor pointers), and searches the cross product for one
combination whose events admit a valid total order.

The replay follows the paper's efficient implementation: an event is
represented by the hash of the message it consumes (network events) and the
hashes of the messages it generates; replay then reduces to integer
bookkeeping on a multiset ``net`` of generated-message hashes:

1. a local event is always enabled; a network event is enabled if its
   consumed hash is in ``net``;
2. executing pops the event and, for network events, removes the consumed
   hash from ``net``;
3. the event's generated hashes are added to ``net``.

Greedy selection of *any* enabled event is sufficient (§4.1: "It actually
does not matter which enabled event is selected") — the proof sketch is that
executing an enabled event never disables another node's enabled event
(messages are only ever added for others), so enabled events persist and the
greedy order is maximal.  That argument has one gap the paper glosses over:
when two steps *compete to consume the same message hash* (identical message
content hashed twice), executing one consumer disables the other, and greedy
can starve a node that a different order would have fed.  Replay therefore
falls back to a memoised backtracking search — but only when some consumed
hash has more than one consumer, the sole case greedy can err on, so the
common path stays the paper's linear sweep.

Crash/restart steps (docs/FAULTS.md) thread through both enumeration and
replay with no special casing: their predecessor links carry
``consumed_hash=None`` and ``generated_hashes=()``, so they behave exactly
like local events — always enabled, touching ``net`` not at all — and the
resolved witness trace naturally contains the ``CrashEvent``/``RestartEvent``
values at their positions in the total order.  One conservatism follows: a
message both executed before a node's crash and redelivered after its
restart appears as *two* consumers of one hash, so the replay demands it be
generated twice.  A real network can redeliver a retransmitted or duplicate
copy without a second generation; such schedules may therefore be rejected
as inconclusive (a possible missed bug, never a false positive).

Drop and duplicate steps (docs/FAULTS.md) thread through the same machinery:

* a ``DropEvent`` link carries ``consumed_hash`` = the lost message's hash,
  so replay requires the message to be *generated* before it is lost and
  consumes the per-destination copy — a witness can never both drop and
  deliver the same copy, and a drop of a message nobody sent is invalid;
* a ``DuplicateEvent`` link is a local-like step (``consumed_hash=None``,
  generated = the handler's sends): the fault-minted copy has no generating
  handler of its own, so demanding a second generation would starve every
  replay.  The conservatism is the mirror of the crash-redelivery note
  above — the duplicate's position in a witness is constrained only by its
  own sends, not by the original delivery, which can in principle admit an
  order a real duplicate-delivering network would serialize differently;
  the checker only mints duplicates of messages genuinely in ``I+``, so the
  copy itself is always justified.

Deviations from the paper, both explicit and bounded:

* self-referencing predecessor links are ignored (the paper does the same);
* predecessor-path enumeration walks *simple* paths (no repeated state on a
  path) and is capped by the configured limits; a capped search that found no
  valid order reports "inconclusive", which the checker treats as invalid
  (no bug reported), mirroring the paper's favour-simplicity stance.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.records import LocalStateSpace, NodeStateRecord, PredecessorLink
from repro.model.events import Event
from repro.model.types import NodeId
from repro.obs.emitter import NULL_EMITTER, TraceEmitter
from repro.stats.counters import ExplorationStats


class SequenceStep:
    """One event of a node sequence, in hash form plus the original event.

    ``event_hash`` is the predecessor pointer's stored hash of the event
    (§4.2), carried for diagnostics and for callers that identify steps
    without touching the event value.  It is optional (``None``) because
    hand-built steps in tests don't need it.
    """

    __slots__ = ("event", "consumed_hash", "generated_hashes", "event_hash")

    def __init__(
        self,
        event: Event,
        consumed_hash: Optional[int],
        generated_hashes: Tuple[int, ...],
        event_hash: Optional[int] = None,
    ):
        self.event = event
        self.consumed_hash = consumed_hash
        self.generated_hashes = generated_hashes
        self.event_hash = event_hash

    @property
    def is_network(self) -> bool:
        """True when this step consumes a message."""
        return self.consumed_hash is not None


#: One node's candidate event sequence, oldest event first.
NodeSequence = Tuple[SequenceStep, ...]


class SoundnessVerifier:
    """Validates system states against the predecessor structure in ``LS``."""

    def __init__(
        self,
        space: LocalStateSpace,
        stats: ExplorationStats,
        max_sequences_per_node: Optional[int] = None,
        max_combinations: Optional[int] = None,
        emitter: TraceEmitter = NULL_EMITTER,
        memoize: bool = True,
        replay_cache_limit: Optional[int] = 4096,
    ):
        self._space = space
        self._stats = stats
        self._max_sequences = max_sequences_per_node
        self._max_combinations = max_combinations
        self._emitter = emitter
        self._memoize = memoize
        self._replay_cache_limit = replay_cache_limit
        #: (node, record index) -> (store version at compute time, sequences).
        #: A bumped store version (new record or new predecessor pointer
        #: anywhere in that node's store) invalidates the entry, so memoised
        #: enumerations are reused exactly while the DAG below them is stable.
        self._sequence_memo: Dict[
            Tuple[NodeId, int], Tuple[int, List[NodeSequence]]
        ] = {}
        #: Combination replay key -> executed order as (node, step index)
        #: pairs, or None when no valid total order exists.  The key is built
        #: purely from event/consumed/generated hashes, which determine the
        #: replay outcome; the witness events are re-resolved against the
        #: *current* combination, so traces are identical to uncached runs.
        self._replay_cache: "OrderedDict[tuple, Optional[Tuple[Tuple[NodeId, int], ...]]]" = (
            OrderedDict()
        )

    # -- public API -----------------------------------------------------------

    def is_state_sound(
        self, records: Dict[NodeId, NodeStateRecord]
    ) -> Optional[Tuple[Event, ...]]:
        """Search for a valid total order realising this combination.

        The paper's ``isStateSound`` (§4.1, Fig. 9 lines 17-25).  ``records``
        maps every node to the node-state record of the candidate system
        state.  Returns the witness event sequence (a valid total order over
        all nodes' events) when the state is valid, else ``None``.

        Each call is one §5.4 measurement unit ("LMC-OPT triggers the
        soundness verification for 773 times, and each call takes 45 ms in
        average"): with tracing enabled it emits one ``soundness`` span
        carrying the sequence count examined and the outcome.
        """
        self._stats.soundness_calls += 1
        if not self._emitter.enabled:
            return self._search(records)
        sequences_before = self._stats.soundness_sequences
        with self._emitter.span("soundness", nodes=len(records)) as span:
            witness = self._search(records)
            span.add(
                sequences=self._stats.soundness_sequences - sequences_before,
                sound=witness is not None,
            )
        return witness

    def _search(
        self, records: Dict[NodeId, NodeStateRecord]
    ) -> Optional[Tuple[Event, ...]]:
        """The uninstrumented body of :meth:`is_state_sound`."""
        per_node: List[Tuple[NodeId, List[NodeSequence]]] = []
        for node in sorted(records):
            sequences = self._enumerate_sequences(records[node])
            if not sequences:
                # No acyclic path reaches this state: with the prototype's
                # simplifications the state cannot be validated.
                return None
            per_node.append((node, sequences))

        combinations = 0
        for combo in self._combinations(per_node):
            combinations += 1
            if (
                self._max_combinations is not None
                and combinations > self._max_combinations
            ):
                return None
            self._stats.soundness_sequences += 1
            order = self._replay(combo)
            if order is not None:
                return tuple(combo[node][index].event for node, index in order)
        return None

    def _replay(
        self, combo: Dict[NodeId, NodeSequence]
    ) -> Optional[Tuple[Tuple[NodeId, int], ...]]:
        """Replay a sequence combination, consulting the verdict cache.

        The replay outcome — both whether a valid total order exists and
        *which* order the deterministic search finds — is a pure function of
        the per-step ``(consumed_hash, generated_hashes)`` tuples, so those
        form the cache key.  Witness events are resolved by the caller
        against the current combination, keeping traces byte-identical to
        uncached runs.
        """
        if not self._memoize:
            return replay_sequences_indexed(combo)
        key = tuple(
            (
                node,
                tuple(
                    (step.consumed_hash, step.generated_hashes)
                    for step in combo[node]
                ),
            )
            for node in sorted(combo)
        )
        cache = self._replay_cache
        cached = cache.get(key, _REPLAY_MISS)
        if cached is not _REPLAY_MISS:
            cache.move_to_end(key)
            self._stats.replay_cache_hits += 1
            return cached
        order = replay_sequences_indexed(combo)
        cache[key] = order
        if (
            self._replay_cache_limit is not None
            and len(cache) > self._replay_cache_limit
        ):
            cache.popitem(last=False)
        return order

    # -- sequence enumeration ------------------------------------------------

    def _enumerate_sequences(self, record: NodeStateRecord) -> List[NodeSequence]:
        """All simple predecessor paths from the live state to ``record``.

        Memoised per record, keyed on the node store's structural version:
        any new record or predecessor pointer in that store bumps the
        version and invalidates the memo, so a reused enumeration is always
        the one a fresh walk would produce.  Repeated preliminary violations
        on the same node states — the §5.4 dominant cost — then pay for the
        DAG walk once instead of per violation.
        """
        if not self._memoize:
            return self._walk_sequences(record)
        store = self._space.store(record.node)
        key = (record.node, record.index)
        cached = self._sequence_memo.get(key)
        if cached is not None and cached[0] == store.version:
            self._stats.sequence_cache_hits += 1
            return cached[1]
        sequences = self._walk_sequences(record)
        self._sequence_memo[key] = (store.version, sequences)
        return sequences

    def _walk_sequences(self, record: NodeStateRecord) -> List[NodeSequence]:
        """The uncached predecessor-DAG walk behind :meth:`_enumerate_sequences`.

        Walks the predecessor DAG backwards; a path never revisits a state
        hash (simple paths) and self-referencing links are skipped, per the
        paper's simplification.  Truncated at ``max_sequences_per_node``.
        """
        sequences: List[NodeSequence] = []
        store = self._space.store(record.node)

        def walk(current: NodeStateRecord, suffix: List[SequenceStep], seen: set) -> bool:
            """Extend paths backwards; returns False when the cap is hit."""
            if current.seed:
                # The live/seed state: the suffix, reversed, is a complete
                # sequence from the live state to the target record.
                sequences.append(tuple(reversed(suffix)))
                return (
                    self._max_sequences is None
                    or len(sequences) < self._max_sequences
                )
            for link in current.predecessors:
                if link.prev_hash is None or link.prev_hash == current.hash:
                    continue  # self-reference (§4.2) or defensive None
                if link.prev_hash in seen:
                    continue  # keep paths simple
                previous = store.lookup(link.prev_hash)
                if previous is None:
                    continue
                suffix.append(
                    SequenceStep(
                        link.event,
                        link.consumed_hash,
                        link.generated_hashes,
                        link.event_hash,
                    )
                )
                seen.add(link.prev_hash)
                keep_going = walk(previous, suffix, seen)
                seen.discard(link.prev_hash)
                suffix.pop()
                if not keep_going:
                    return False
            return True

        walk(record, [], {record.hash})
        return sequences

    # -- combination enumeration -------------------------------------------------

    @staticmethod
    def _combinations(
        per_node: Sequence[Tuple[NodeId, List[NodeSequence]]]
    ) -> Iterator[Dict[NodeId, NodeSequence]]:
        """Cross product of per-node sequences, lazily."""

        def recurse(i: int, chosen: Dict[NodeId, NodeSequence]):
            if i == len(per_node):
                yield dict(chosen)
                return
            node, sequences = per_node[i]
            for sequence in sequences:
                chosen[node] = sequence
                yield from recurse(i + 1, chosen)
            chosen.pop(node, None)

        yield from recurse(0, {})


#: Cache-miss sentinel for the replay verdict cache (``None`` is a verdict).
_REPLAY_MISS = object()


def replay_sequences_indexed(
    sequences: Dict[NodeId, NodeSequence]
) -> Optional[Tuple[Tuple[NodeId, int], ...]]:
    """The ``isSequenceValid`` greedy replay over message hashes.

    Returns the executed total order as ``(node, step index)`` pairs when
    every node's sequence drains, else ``None``.  When greedy starves and
    the failure could be a greedy artefact (competing consumers of one
    hash), retries with :func:`backtrack_order`.  The outcome depends only
    on the steps' consumed/generated hashes, which is what makes verdicts
    cacheable across combinations.
    """
    pointers: Dict[NodeId, int] = {node: 0 for node in sequences}
    net: Dict[int, int] = {}
    order: List[Tuple[NodeId, int]] = []
    total = sum(len(sequence) for sequence in sequences.values())
    nodes = sorted(sequences)

    executed = 0
    progress = True
    while progress:
        progress = False
        for node in nodes:
            sequence = sequences[node]
            pointer = pointers[node]
            while pointer < len(sequence):
                step = sequence[pointer]
                if step.is_network:
                    available = net.get(step.consumed_hash, 0)
                    if available == 0:
                        break
                    if available == 1:
                        del net[step.consumed_hash]
                    else:
                        net[step.consumed_hash] = available - 1
                for generated in step.generated_hashes:
                    net[generated] = net.get(generated, 0) + 1
                order.append((node, pointer))
                pointer += 1
                executed += 1
                progress = True
            pointers[node] = pointer
    if executed == total:
        return tuple(order)
    plain = {
        node: tuple(
            (step.consumed_hash, step.generated_hashes)
            for step in sequences[node]
        )
        for node in nodes
    }
    if not has_competing_consumers(plain):
        return None
    found = backtrack_order(plain)
    if found is None:
        return None
    return tuple(found)


def replay_sequences(
    sequences: Dict[NodeId, NodeSequence]
) -> Optional[Tuple[Event, ...]]:
    """:func:`replay_sequences_indexed` with the order resolved to events."""
    order = replay_sequences_indexed(sequences)
    if order is None:
        return None
    return tuple(sequences[node][index].event for node, index in order)


#: A step reduced to pure hash bookkeeping: (consumed or None, generated).
PlainStep = Tuple[Optional[int], Tuple[int, ...]]

#: Position-vector memo bound for :func:`backtrack_order`.  The position
#: space is the product of (len + 1) over nodes, so real soundness calls
#: (3 nodes, short predecessor paths) sit far under this; hitting the cap
#: reports "no order found", which the checker already treats as invalid.
BACKTRACK_STATE_CAP = 4096


def has_competing_consumers(
    sequences: Dict[NodeId, Sequence[PlainStep]]
) -> bool:
    """True when two steps (any nodes) consume the same message hash.

    This is the only configuration under which the §4.1 greedy replay can
    wrongly starve: with unique consumers, executing an enabled event never
    disables another, and greedy failure is a true negative.
    """
    seen: set = set()
    for sequence in sequences.values():
        for consumed, _generated in sequence:
            if consumed is None:
                continue
            if consumed in seen:
                return True
            seen.add(consumed)
    return False


def backtrack_order(
    sequences: Dict[NodeId, Sequence[PlainStep]],
    state_cap: int = BACKTRACK_STATE_CAP,
) -> Optional[List[Tuple[NodeId, int]]]:
    """Complete search for a causally valid total order of plain steps.

    Depth-first over which node executes next, memoised on the position
    vector — sound because ``net`` is a pure function of the executed prefix
    multiset, hence of the positions.  Bounded by ``state_cap`` visited
    position vectors; an exhausted cap means "none found" (inconclusive,
    treated as invalid, mirroring the enumeration caps).  Returns the order
    as ``(node, index)`` pairs.
    """
    nodes = sorted(sequences)
    total = sum(len(sequences[node]) for node in nodes)
    seen: set = set()
    order: List[Tuple[NodeId, int]] = []

    def dfs(positions: Dict[NodeId, int], net: Dict[int, int]) -> bool:
        if len(order) == total:
            return True
        key = tuple(positions[node] for node in nodes)
        if key in seen or len(seen) >= state_cap:
            return False
        seen.add(key)
        for node in nodes:
            pointer = positions[node]
            if pointer >= len(sequences[node]):
                continue
            consumed, generated = sequences[node][pointer]
            if consumed is not None:
                if net.get(consumed, 0) == 0:
                    continue
                net[consumed] -= 1
                if not net[consumed]:
                    del net[consumed]
            for item in generated:
                net[item] = net.get(item, 0) + 1
            positions[node] = pointer + 1
            order.append((node, pointer))
            if dfs(positions, net):
                return True
            order.pop()
            positions[node] = pointer
            for item in generated:
                net[item] -= 1
                if not net[item]:
                    del net[item]
            if consumed is not None:
                net[consumed] = net.get(consumed, 0) + 1
        return False

    if dfs({node: 0 for node in nodes}, {}):
        return order
    return None
