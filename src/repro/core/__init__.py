"""The paper's contribution: the local model checker (LMC)."""

from repro.core.checker import LocalModelChecker
from repro.core.parallel import ParallelLocalModelChecker
from repro.core.config import LMCConfig
from repro.core.records import LocalStateSpace, NodeStateRecord, PredecessorLink
from repro.core.soundness import SoundnessVerifier, replay_sequences
from repro.core.system_states import (
    combination_to_system_state,
    enumerate_general,
    enumerate_optimized,
)

__all__ = [
    "LMCConfig",
    "LocalModelChecker",
    "ParallelLocalModelChecker",
    "LocalStateSpace",
    "NodeStateRecord",
    "PredecessorLink",
    "SoundnessVerifier",
    "combination_to_system_state",
    "enumerate_general",
    "enumerate_optimized",
    "replay_sequences",
]
