"""Parallel local model checking.

The paper's third contribution bullet: "Having the exploration, system state
creation, and soundness verification decoupled, the model checking process
can be embarrassingly parallelized to benefit from the ever increasing
number of cores."

This module realises the decoupling the way it pays off in CPython: the
exploration pass runs once (it is cheap — Fig. 10's LMC-local curve), all
preliminary violations are *collected* instead of verified inline, and the
expensive soundness verifications — each one an independent search over
per-node event-sequence combinations (§5.4: "LMC-OPT triggers the soundness
verification for 773 times, and each call takes 45 ms in average") — are
fanned out to a process pool.

Work units ship as plain integers: each candidate sequence is reduced to its
``(consumed_hash, generated_hashes)`` steps, so pickling is trivial and the
worker's replay is the same integer-only bookkeeping the sequential
verifier uses.  Workers return index paths into the shipped sequences; the
parent resolves them back to real events to build the witness trace.

Dispatch economics (docs/PERFORMANCE.md): workers live in the persistent
process pool shared with parallel exploration
(:func:`repro.core.pool.shared_executor`), units are grouped into batches of
about four per worker, and each batch's candidate sequences — heavily shared
between units through overlapping predecessor chains — are deduplicated into
one table shipped once per batch.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.checker import LocalModelChecker, _ExplorationPass
from repro.core.config import LMCConfig
from repro.core.pool import shared_executor, shutdown_worker_pool
from repro.core.records import NodeStateRecord
from repro.core.soundness import (
    NodeSequence,
    SoundnessVerifier,
    backtrack_order,
    has_competing_consumers,
)
from repro.core.system_states import Combination, combination_to_system_state
from repro.explore.budget import BudgetClock, SearchBudget
from repro.invariants.base import Invariant
from repro.model.events import Event
from repro.model.protocol import Protocol
from repro.model.system_state import SystemState
from repro.obs.coverage import NULL_COVERAGE
from repro.obs.emitter import NULL_EMITTER, TraceEmitter
from repro.protocols.common import declared_action_names, declared_message_types
from repro.reports import BugReport, CheckResult
from repro.stats.counters import ExplorationStats

#: A sequence step shipped to a worker: (consumed hash or None, generated).
PlainStep = Tuple[Optional[int], Tuple[int, ...]]
#: A work unit: per node, the candidate sequences in plain-step form.
WorkUnit = Dict[int, List[Tuple[PlainStep, ...]]]
#: A worker verdict: the chosen sequence index per node plus the executed
#: total order as (node, step index) pairs — or None if no combination
#: replays.
Verdict = Optional[Tuple[Dict[int, int], List[Tuple[int, int]]]]


class WorkerReport(NamedTuple):
    """A worker's answer for one unit: verdict plus its own measurements.

    Workers cannot write to the parent's trace, so each ships the span data
    back over the result channel — the parent re-emits it
    (:meth:`~repro.obs.emitter.TraceEmitter.emit_span`) and folds the
    counters into the run's :class:`ExplorationStats` through the single
    ``merge`` helper, keeping a multiprocess run's trace and counters as
    coherent as a sequential one's.
    """

    verdict: Verdict
    #: Sequence combinations the unit's search replayed (§5.4 counter).
    combinations: int
    #: Wall seconds the verification took inside the worker.
    wall_s: float
    #: The worker's OS process id (the parent's own pid when ``workers=0``).
    pid: int

    def to_stats(self) -> ExplorationStats:
        """This unit's counter contribution, ready for ``merge``.

        Bug confirmation is *not* counted here — the parent counts it when
        it actually builds the report (``stop_on_first_bug`` may discard
        later verdicts).
        """
        return ExplorationStats(
            soundness_calls=1, soundness_sequences=self.combinations
        )


def _replay_plain(
    sequences: Dict[int, Tuple[PlainStep, ...]]
) -> Optional[List[Tuple[int, int]]]:
    """The greedy hash replay over plain steps; returns the executed order.

    Same contract as :func:`repro.core.soundness.replay_sequences`, over the
    picklable plain-step form: greedy sweep first, and — when the starvation
    could be a greedy artefact (two steps competing for one consumed hash) —
    a fall back to the memoised :func:`backtrack_order` search.
    """
    pointers = {node: 0 for node in sequences}
    net: Dict[int, int] = {}
    order: List[Tuple[int, int]] = []
    total = sum(len(seq) for seq in sequences.values())
    nodes = sorted(sequences)
    progress = True
    executed = 0
    while progress:
        progress = False
        for node in nodes:
            sequence = sequences[node]
            pointer = pointers[node]
            while pointer < len(sequence):
                consumed, generated = sequence[pointer]
                if consumed is not None:
                    available = net.get(consumed, 0)
                    if available == 0:
                        break
                    if available == 1:
                        del net[consumed]
                    else:
                        net[consumed] = available - 1
                for item in generated:
                    net[item] = net.get(item, 0) + 1
                order.append((node, pointer))
                pointer += 1
                executed += 1
                progress = True
            pointers[node] = pointer
    if executed == total:
        return order
    if has_competing_consumers(sequences):
        return backtrack_order(sequences)
    return None


def _verify_unit_counted(
    unit: WorkUnit, max_combinations: Optional[int]
) -> Tuple[Verdict, int]:
    """:func:`verify_unit` plus the number of combinations actually replayed."""
    nodes = sorted(unit)
    tried = 0

    def recurse(i: int, chosen: Dict[int, int]) -> Verdict:
        nonlocal tried
        if i == len(nodes):
            tried += 1
            if max_combinations is not None and tried > max_combinations:
                return None
            sequences = {
                node: unit[node][chosen[node]] for node in nodes
            }
            order = _replay_plain(sequences)
            if order is not None:
                return (dict(chosen), order)
            return None
        node = nodes[i]
        for index in range(len(unit[node])):
            chosen[node] = index
            verdict = recurse(i + 1, chosen)
            if verdict is not None:
                return verdict
            if max_combinations is not None and tried > max_combinations:
                return None
        chosen.pop(node, None)
        return None

    return recurse(0, {}), tried


def verify_unit(unit: WorkUnit, max_combinations: Optional[int]) -> Verdict:
    """Search a work unit's sequence combinations for a valid total order.

    The worker-side half of §4.1's ``isStateSound``: the cross-product
    search the paper measures in §5.4, over plain hash steps.  Module-level
    (picklable) so it can run in worker processes; also used directly when
    ``workers == 0`` for a deterministic in-process fallback.
    """
    return _verify_unit_counted(unit, max_combinations)[0]


def verify_unit_profiled(
    unit: WorkUnit, max_combinations: Optional[int]
) -> WorkerReport:
    """Run :func:`verify_unit` and measure it — the pool's actual task.

    Wall time and the combination count travel back with the verdict so the
    parent can emit a ``worker_verify`` trace span and merge the §5.4
    counters that a bare verdict would silently drop.
    """
    started = time.perf_counter()
    verdict, tried = _verify_unit_counted(unit, max_combinations)
    return WorkerReport(
        verdict=verdict,
        combinations=tried,
        wall_s=time.perf_counter() - started,
        pid=os.getpid(),
    )


#: An index-based work unit: per node, indices into a batch's shared
#: sequence table.  Overlapping predecessor chains make many units share
#: candidate sequences; shipping each distinct sequence once per batch keeps
#: pickling cost proportional to distinct data, not to units.
UnitSpec = Dict[int, List[int]]


def _verify_batch_task(
    table: List[Tuple[PlainStep, ...]],
    specs: List[UnitSpec],
    max_combinations: Optional[int],
) -> List[WorkerReport]:
    """Worker-side batch entry point: rebuild units from the table, verify all.

    Batching amortizes per-task dispatch overhead (pickle + queue round
    trip) over many small units, which dominates when individual soundness
    searches are fast.
    """
    reports: List[WorkerReport] = []
    for spec in specs:
        unit: WorkUnit = {
            node: [table[index] for index in indices]
            for node, indices in spec.items()
        }
        reports.append(verify_unit_profiled(unit, max_combinations))
    return reports


def _encode_batch(
    units: Sequence[WorkUnit],
) -> Tuple[List[Tuple[PlainStep, ...]], List[UnitSpec]]:
    """Dedup a batch's sequences into a shared table plus per-unit indices."""
    table: List[Tuple[PlainStep, ...]] = []
    positions: Dict[Tuple[PlainStep, ...], int] = {}
    specs: List[UnitSpec] = []
    for unit in units:
        spec: UnitSpec = {}
        for node, sequences in unit.items():
            indices: List[int] = []
            for sequence in sequences:
                position = positions.get(sequence)
                if position is None:
                    position = len(table)
                    positions[sequence] = position
                    table.append(sequence)
                indices.append(position)
            spec[node] = indices
        specs.append(spec)
    return table, specs


#: Back-compat alias: the pool now lives in :mod:`repro.core.pool`, shared
#: between soundness verification and parallel exploration.
_shared_executor = shared_executor


def shutdown_verification_pool(broken: bool = False) -> None:
    """Deprecated alias for :func:`repro.core.pool.shutdown_worker_pool`.

    Kept for callers that predate the pool's generalization to exploration;
    new code should import ``shutdown_worker_pool`` from ``repro.core.pool``.
    """
    shutdown_worker_pool(broken=broken)


class ParallelLocalModelChecker:
    """LMC with soundness verification fanned out over worker processes.

    ``workers=0`` verifies in-process (useful for determinism and tests);
    ``workers=None`` uses ``os.cpu_count()``.  Semantically equivalent to
    the sequential checker except that *all* preliminary violations are
    verified (there is no early stop during exploration); with
    ``stop_on_first_bug`` the report phase still returns at the first
    confirmed violation.
    """

    def __init__(
        self,
        protocol: Protocol,
        invariant: Invariant,
        budget: SearchBudget = SearchBudget.unbounded(),
        config: LMCConfig = LMCConfig(),
        workers: Optional[int] = 0,
        emitter: Optional[TraceEmitter] = None,
        metrics_interval: Optional[float] = None,
        run_handle=None,
        coverage=None,
    ):
        self.protocol = protocol
        self.invariant = invariant
        self.budget = budget
        self.workers = workers
        self.emitter = emitter if emitter is not None else NULL_EMITTER
        self.metrics_interval = metrics_interval
        #: Registry handle and coverage tracker, passed through to the inner
        #: exploration checker (docs/OBSERVABILITY.md "Live operations").
        self.run_handle = run_handle
        self.coverage = coverage
        # Exploration collects; verification is ours.
        self.config = LMCConfig(
            **{
                **config.__dict__,
                "verify_soundness": False,
                "collect_preliminary": True,
            }
        )
        self._report_config = config
        self.algorithm = "LMC-parallel"

    def coverage_report(self):
        """JSON-ready coverage counters (see :meth:`LocalModelChecker.coverage_report`)."""
        tracker = self.coverage if self.coverage is not None else NULL_COVERAGE
        return tracker.as_dict(
            declared_messages=declared_message_types(self.protocol),
            declared_actions=declared_action_names(self.protocol),
        )

    def run(self, initial_system: Optional[SystemState] = None) -> CheckResult:
        """Explore, then verify collected violations across the pool.

        The decoupled pipeline of §4/§5.4: one sequential exploration pass
        (spans and metric samples flow through the shared emitter exactly
        as in :class:`LocalModelChecker`), then the collected preliminary
        violations fan out to the process pool under one ``dispatch``
        trace span, with each worker's measurements re-emitted as a
        ``worker_verify`` child span.  Worker counters reach the run's
        stats only through :meth:`ExplorationStats.merge`, so a dropped or
        double-counted field is a bug in one place, not scattered ``+=``
        sites.
        """
        if initial_system is None:
            initial_system = self.protocol.initial_system_state()
        checker = LocalModelChecker(
            self.protocol,
            self.invariant,
            self.budget,
            self.config,
            emitter=self.emitter,
            metrics_interval=self.metrics_interval,
            run_handle=self.run_handle,
            coverage=self.coverage,
        )
        clock = BudgetClock(self.budget)
        pass_run = _ExplorationPass(checker, initial_system, clock, None)
        with self.emitter.span("pass", algorithm=self.algorithm) as pass_span:
            outcome = pass_run.execute()
            pass_span.add(
                stop_reason=outcome.reason,
                transitions=pass_run.stats.transitions,
            )

        stats = ExplorationStats()
        stats.merge(pass_run.stats)
        result = CheckResult(
            algorithm=self.algorithm,
            completed=outcome.completed,
            stats=stats,
            series=pass_run.series,
            stop_reason=outcome.reason,
        )

        units: List[Tuple[Combination, WorkUnit, Dict[int, List[NodeSequence]]]] = []
        verifier = SoundnessVerifier(
            pass_run.space,
            stats,
            max_sequences_per_node=self._report_config.max_sequences_per_node,
            max_combinations=self._report_config.max_combinations_per_check,
        )
        for combo in pass_run.unverified:
            unit, resolved = self._build_unit(verifier, combo)
            if unit is None:
                continue
            units.append((combo, unit, resolved))

        dispatch_started = time.perf_counter()
        worker_stats = ExplorationStats()
        with self.emitter.span(
            "dispatch", units=len(units), workers=self.workers
        ) as dispatch_span:
            reports = self._verify_all(
                [unit for _combo, unit, _resolved in units]
            )
            for index, report in enumerate(reports):
                worker_stats.merge(report.to_stats())
                self.emitter.emit_span(
                    "worker_verify",
                    report.wall_s,
                    fields={
                        "unit": index,
                        "combinations": report.combinations,
                        "sound": report.verdict is not None,
                    },
                    pid=report.pid,
                )
            dispatch_span.add(
                confirmed=sum(
                    1 for report in reports if report.verdict is not None
                )
            )
        # Parent-side wall time of the whole fan-out: the parallel run's
        # "soundness" share of the Fig. 13 decomposition.
        worker_stats.add_phase_time(
            "soundness", time.perf_counter() - dispatch_started
        )
        stats.merge(worker_stats)

        for (combo, _unit, resolved), report in zip(units, reports):
            if report.verdict is None:
                continue
            chosen, order = report.verdict
            trace = self._resolve_trace(resolved, chosen, order)
            system = combination_to_system_state(combo)
            stats.confirmed_bugs += 1
            result.bugs.append(
                BugReport(
                    kind="invariant",
                    description=self.invariant.describe_violation(system),
                    violating_state=system,
                    trace=trace,
                    initial_state=initial_system,
                )
            )
            if self._report_config.stop_on_first_bug:
                result.stop_reason = "bug found"
                result.completed = False
                return result
        return result

    # -- helpers ---------------------------------------------------------------

    def _build_unit(
        self, verifier: SoundnessVerifier, combo: Combination
    ) -> Tuple[Optional[WorkUnit], Dict[int, List[NodeSequence]]]:
        """Reduce a combination to a picklable work unit.

        Returns ``(None, {})`` when some node has no candidate sequence at
        all (the state cannot be validated under the prototype's
        simplifications).
        """
        unit: WorkUnit = {}
        resolved: Dict[int, List[NodeSequence]] = {}
        for node in sorted(combo):
            record: NodeStateRecord = combo[node]
            sequences = verifier._enumerate_sequences(record)
            if not sequences:
                return None, {}
            resolved[node] = sequences
            unit[node] = [
                tuple(
                    (step.consumed_hash, step.generated_hashes)
                    for step in sequence
                )
                for sequence in sequences
            ]
        return unit, resolved

    def _verify_all(self, units: Sequence[WorkUnit]) -> List[WorkerReport]:
        """Verify every unit, in-process or across the pool (§5.4 fan-out).

        Returns one :class:`WorkerReport` per unit, in unit order.  Units
        are grouped into batches (about four per worker) whose sequences are
        deduplicated into one shared table each, submitted to the persistent
        :func:`repro.core.pool.shared_executor` pool; futures are resolved
        in submission order, so the trace the parent re-emits stays causally
        aligned with the unit list.  A broken pool (a killed worker) is
        rebuilt once and the whole generation retried before giving up.
        """
        max_combinations = self._report_config.max_combinations_per_check
        if not units:
            return []
        if self.workers == 0:
            return [
                verify_unit_profiled(unit, max_combinations) for unit in units
            ]
        workers = self.workers or multiprocessing.cpu_count()
        batch_size = max(1, -(-len(units) // (workers * 4)))
        batches = [
            _encode_batch(units[start : start + batch_size])
            for start in range(0, len(units), batch_size)
        ]
        for attempt in (0, 1):
            executor = shared_executor(workers)
            try:
                futures = [
                    executor.submit(
                        _verify_batch_task, table, specs, max_combinations
                    )
                    for table, specs in batches
                ]
                return [
                    report
                    for future in futures
                    for report in future.result()
                ]
            except BrokenProcessPool:
                shutdown_worker_pool(broken=True)
                if attempt:
                    raise
        raise AssertionError("unreachable")

    @staticmethod
    def _resolve_trace(
        resolved: Dict[int, List[NodeSequence]],
        chosen: Dict[int, int],
        order: List[Tuple[int, int]],
    ) -> Tuple[Event, ...]:
        """Map a worker's index-path verdict back to real events (§4.1 witness).

        Workers see only integer hashes; the parent owns the
        :class:`~repro.core.soundness.SequenceStep` objects, so the witness
        trace — the paper's executable counter-example — is rebuilt here.
        """
        events: List[Event] = []
        for node, step_index in order:
            sequence = resolved[node][chosen[node]]
            events.append(sequence[step_index].event)
        return tuple(events)
