"""Counters, per-depth series and reporting used by checkers and benches."""

from repro.stats.counters import ExplorationStats
from repro.stats.reporting import format_depth_series, format_table
from repro.stats.series import DepthSample, DepthSeries

__all__ = [
    "DepthSample",
    "DepthSeries",
    "ExplorationStats",
    "format_depth_series",
    "format_table",
]
