"""Plain-text rendering of figures and tables for the benchmark harness.

The benches do not plot; they *print* the same rows/series the paper's
figures plot, in aligned monospace tables, and the EXPERIMENTS.md entries
paste these verbatim.  Keeping the renderer tiny and dependency-free means
bench output is stable across environments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.stats.series import DepthSeries


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table.

    Numbers are right-aligned and floats shortened; everything else is
    left-aligned.  Returns the table as a single string (no trailing
    newline).
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append([_render_cell(cell) for cell in row])
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        line = []
        for i, cell in enumerate(row):
            if _looks_numeric(cell):
                line.append(cell.rjust(widths[i]))
            else:
                line.append(cell.ljust(widths[i]))
        lines.append("  ".join(line))
    return "\n".join(lines)


def format_depth_series(
    series_list: Sequence[DepthSeries], metric: str, title: str
) -> str:
    """Render several algorithms' per-depth series as one table.

    One row per depth appearing in any series; one column per algorithm;
    missing cells (an algorithm that never completed that depth) render as
    ``-``, exactly as a truncated curve reads on the paper's log-scale plots.
    """
    depths = sorted({d for series in series_list for d in series.depths()})
    headers = ["depth"] + [series.label for series in series_list]
    rows = []
    for depth in depths:
        row: List[object] = [depth]
        for series in series_list:
            sample = series.at_depth(depth)
            if sample is None:
                row.append("-")
            elif metric == "elapsed_s":
                row.append(sample.elapsed_s)
            else:
                row.append(sample.get(metric))
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"


def format_phase_breakdown(phase_seconds: Dict[str, float]) -> str:
    """The Fig. 13 overhead decomposition as a table.

    One row per phase bucket (exploration, system-state creation, soundness
    verification, plus any extra buckets a caller accumulated), with wall
    seconds and the share of the summed phase time.  Returns ``""`` when no
    phase was timed, so callers can print it unconditionally.
    """
    from repro.obs.profiling import overhead_breakdown

    rows = [
        (name, seconds, f"{share * 100:.1f}%")
        for name, seconds, share in overhead_breakdown(phase_seconds)
    ]
    if not rows:
        return ""
    return format_table(["phase", "seconds", "share"], rows)


def _render_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.3g}"
        return f"{cell:.4g}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def _looks_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "")
    stripped = stripped.replace("e", "").replace("+", "")
    return stripped.isdigit() and cell not in ("-",)
