"""Per-depth measurement series — the raw material of Figs. 10-13.

Every figure in the paper's evaluation plots a quantity against exploration
*depth*: elapsed time (Fig. 10), state counts (Fig. 11), memory (Fig. 12),
phase overheads (Fig. 13).  Checkers record a :class:`DepthSample` each time
they complete a depth level; the bench harness turns the resulting
:class:`DepthSeries` into printed figure data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class DepthSample:
    """Cumulative measurements at the moment depth ``depth`` was completed."""

    depth: int
    elapsed_s: float
    metrics: Dict[str, float]

    def get(self, key: str, default: float = 0.0) -> float:
        """A metric by name, with default."""
        return self.metrics.get(key, default)


@dataclass
class DepthSeries:
    """Ordered per-depth samples for one algorithm on one workload."""

    label: str
    samples: List[DepthSample] = field(default_factory=list)

    def record(self, depth: int, elapsed_s: float, metrics: Dict[str, float]) -> None:
        """Append a sample; depths must be recorded in increasing order."""
        if self.samples and depth <= self.samples[-1].depth:
            raise ValueError(
                f"depth {depth} recorded after depth {self.samples[-1].depth}"
            )
        self.samples.append(DepthSample(depth, elapsed_s, dict(metrics)))

    def record_or_update(
        self, depth: int, elapsed_s: float, metrics: Dict[str, float]
    ) -> None:
        """Record a sample, replacing the last one when depth did not grow.

        Checkers use this for the end-of-run sample: the final measurements
        (total elapsed time, final counters) must land in the series even
        when the deepest level was completed long before the run ended.
        """
        if self.samples and depth <= self.samples[-1].depth:
            self.samples[-1] = DepthSample(
                self.samples[-1].depth, elapsed_s, dict(metrics)
            )
        else:
            self.samples.append(DepthSample(depth, elapsed_s, dict(metrics)))

    def depths(self) -> Tuple[int, ...]:
        """All recorded depths, ascending."""
        return tuple(sample.depth for sample in self.samples)

    def max_depth(self) -> int:
        """Deepest completed level (0 when nothing recorded)."""
        return self.samples[-1].depth if self.samples else 0

    def at_depth(self, depth: int) -> Optional[DepthSample]:
        """The sample recorded for ``depth``, if any."""
        for sample in self.samples:
            if sample.depth == depth:
                return sample
        return None

    def final(self) -> Optional[DepthSample]:
        """The last (deepest) sample, if any."""
        return self.samples[-1] if self.samples else None

    def column(self, key: str) -> Tuple[float, ...]:
        """One metric across all depths (``elapsed_s`` is addressable too)."""
        if key == "elapsed_s":
            return tuple(sample.elapsed_s for sample in self.samples)
        return tuple(sample.get(key) for sample in self.samples)
