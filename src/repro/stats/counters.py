"""Exploration counters shared by both checkers.

Every quantity the paper reports lives here: transitions executed (the
157,332 vs 1,186 comparison of §5.1), states visited (global / node /
system, Fig. 11), invariant checks, preliminary violations, soundness
verification calls and the number of event sequences those calls examined
(the 773 calls / 427,731 sequences breakdown of §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ExplorationStats:
    """Mutable counter block carried by a single checker run."""

    #: Handler executions that produced a transition (global MC: every event
    #: executed on a global state; LMC: every event executed on a node state).
    transitions: int = 0
    #: Handler executions that turned out to be no-ops (state unchanged, no
    #: sends); tracked separately because they are work but not transitions.
    noop_executions: int = 0
    #: Distinct global states visited (global checker only).
    global_states: int = 0
    #: Distinct node states visited, summed over nodes (LMC only).
    node_states: int = 0
    #: System states materialised for invariant checking.
    system_states_created: int = 0
    #: Invariant evaluations performed.
    invariant_checks: int = 0
    #: Invariant violations before soundness verification (LMC only).
    preliminary_violations: int = 0
    #: Soundness verification invocations (LMC only).
    soundness_calls: int = 0
    #: Event sequences examined across all soundness calls (LMC only).
    soundness_sequences: int = 0
    #: Violations confirmed valid and reported as bugs.
    confirmed_bugs: int = 0
    #: Node states discarded due to local assertion failures (§4.2).
    states_discarded_by_assert: int = 0
    #: Sends suppressed by the duplicate-message limit (§4.2).
    suppressed_duplicates: int = 0
    #: Deliveries skipped because the message was in the state's history
    #: (§4.2 "Duplicate messages", redundant-execution rule).
    history_skips: int = 0
    #: Soundness sequence enumerations answered from the per-record memo
    #: instead of re-walking the predecessor DAG.
    sequence_cache_hits: int = 0
    #: Soundness replays answered from the verdict cache instead of
    #: re-running the hash replay (the combination is still counted in
    #: ``soundness_sequences`` — the cache changes cost, not semantics).
    replay_cache_hits: int = 0
    #: Rejected-combination cache entries dropped by the LRU bound
    #: (``LMCConfig.rejected_cache_limit``).
    rejected_cache_evictions: int = 0
    #: Crash events executed by the fault scheduler (docs/FAULTS.md).
    fault_crashes: int = 0
    #: Restart events executed by the fault scheduler.
    fault_restarts: int = 0
    #: Drop events executed by the fault scheduler (docs/FAULTS.md).
    fault_drops: int = 0
    #: Duplicate redeliveries executed by the fault scheduler.
    fault_duplicates: int = 0
    #: Deliveries blocked (message × round) by an active partition window.
    partition_blocks: int = 0
    #: Exploration rounds whose frontier was dispatched to the worker pool
    #: (docs/PERFORMANCE.md "Parallel frontier exploration").
    explore_rounds_parallel: int = 0
    #: Frontier shards shipped to workers across all parallel rounds.
    explore_shards: int = 0
    #: Speculative successor states whose deterministic merge found the
    #: state already in ``LS_n`` (cross-shard rediscoveries suppressed into
    #: a predecessor pointer, exactly as serial dedup would).
    explore_merge_conflicts_suppressed: int = 0
    #: Candidate system-state combinations skipped because another member of
    #: their symmetry orbit was already checked (docs/REDUCTION.md); zero
    #: unless ``LMCConfig.symmetry_reduction`` is on.
    symmetry_skips: int = 0
    #: Non-canonical predecessor pointers suppressed by commutativity
    #: pruning (docs/REDUCTION.md); zero unless ``LMCConfig.por_pruning``.
    por_links_suppressed: int = 0
    #: Wall-clock seconds attributed to each checker phase; keys are phase
    #: names such as "explore", "system_states", "soundness" (Fig. 13).
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def add_phase_time(self, phase: str, seconds: float) -> None:
        """Accumulate wall-clock time into a named phase bucket."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict copy of all counters (cheap, for depth series rows)."""
        return {
            "transitions": self.transitions,
            "noop_executions": self.noop_executions,
            "global_states": self.global_states,
            "node_states": self.node_states,
            "system_states_created": self.system_states_created,
            "invariant_checks": self.invariant_checks,
            "preliminary_violations": self.preliminary_violations,
            "soundness_calls": self.soundness_calls,
            "soundness_sequences": self.soundness_sequences,
            "confirmed_bugs": self.confirmed_bugs,
            "states_discarded_by_assert": self.states_discarded_by_assert,
            "suppressed_duplicates": self.suppressed_duplicates,
            "history_skips": self.history_skips,
            "sequence_cache_hits": self.sequence_cache_hits,
            "replay_cache_hits": self.replay_cache_hits,
            "rejected_cache_evictions": self.rejected_cache_evictions,
            "fault_crashes": self.fault_crashes,
            "fault_restarts": self.fault_restarts,
            "fault_drops": self.fault_drops,
            "fault_duplicates": self.fault_duplicates,
            "partition_blocks": self.partition_blocks,
            "explore_rounds_parallel": self.explore_rounds_parallel,
            "explore_shards": self.explore_shards,
            "explore_merge_conflicts_suppressed": (
                self.explore_merge_conflicts_suppressed
            ),
            "symmetry_skips": self.symmetry_skips,
            "por_links_suppressed": self.por_links_suppressed,
            **{f"phase_{name}_s": secs for name, secs in self.phase_seconds.items()},
        }

    def merge(self, other: "ExplorationStats") -> None:
        """Fold another counter block into this one (parallel-run aggregation)."""
        self.transitions += other.transitions
        self.noop_executions += other.noop_executions
        self.global_states += other.global_states
        self.node_states += other.node_states
        self.system_states_created += other.system_states_created
        self.invariant_checks += other.invariant_checks
        self.preliminary_violations += other.preliminary_violations
        self.soundness_calls += other.soundness_calls
        self.soundness_sequences += other.soundness_sequences
        self.confirmed_bugs += other.confirmed_bugs
        self.states_discarded_by_assert += other.states_discarded_by_assert
        self.suppressed_duplicates += other.suppressed_duplicates
        self.history_skips += other.history_skips
        self.sequence_cache_hits += other.sequence_cache_hits
        self.replay_cache_hits += other.replay_cache_hits
        self.rejected_cache_evictions += other.rejected_cache_evictions
        self.fault_crashes += other.fault_crashes
        self.fault_restarts += other.fault_restarts
        self.fault_drops += other.fault_drops
        self.fault_duplicates += other.fault_duplicates
        self.partition_blocks += other.partition_blocks
        self.explore_rounds_parallel += other.explore_rounds_parallel
        self.explore_shards += other.explore_shards
        self.explore_merge_conflicts_suppressed += (
            other.explore_merge_conflicts_suppressed
        )
        self.symmetry_skips += other.symmetry_skips
        self.por_links_suppressed += other.por_links_suppressed
        for phase, seconds in other.phase_seconds.items():
            self.add_phase_time(phase, seconds)
