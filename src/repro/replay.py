"""Replaying witness traces on real (consuming) semantics.

Every confirmed bug carries a witness: a total order of events that a real
run could execute.  This module replays such traces under the *global*
semantics of Fig. 5 — messages are consumed on delivery — which is the
strongest possible validation of an LMC report: if the replay executes to
completion and the final system state violates the invariant, the bug is
real beyond doubt.

The checkers already guarantee this by construction; the replayer exists so
users (and the test suite) can independently audit any report, and so bug
reports can be turned into regression fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.explore.global_checker import apply_event
from repro.invariants.base import Invariant
from repro.model.events import Event
from repro.model.multiset import FrozenMultiset
from repro.model.protocol import Protocol
from repro.model.system_state import GlobalState, SystemState
from repro.reports import BugReport


@dataclass(frozen=True)
class ReplayOutcome:
    """Result of replaying a trace.

    ``executed`` counts the events that ran; ``failed_at`` is the index of
    the first inexecutable event (None when all ran); ``final_system`` is
    the system state after the last executed event; ``violates`` tells
    whether the supplied invariant fails on it.
    """

    executed: int
    failed_at: Optional[int]
    final_system: SystemState
    violates: Optional[bool]

    @property
    def complete(self) -> bool:
        """True when every event of the trace executed."""
        return self.failed_at is None


def replay_trace(
    protocol: Protocol,
    initial_system: SystemState,
    trace: Tuple[Event, ...],
    invariant: Optional[Invariant] = None,
) -> ReplayOutcome:
    """Execute ``trace`` from ``initial_system`` under consuming semantics.

    A delivery is executable only while its message is genuinely in flight;
    an inexecutable event stops the replay (that is what makes the check
    meaningful).  Internal no-ops are tolerated — they do not change state,
    so skipping them preserves the run.
    """
    state = GlobalState(initial_system, FrozenMultiset())
    executed = 0
    failed_at: Optional[int] = None
    for index, event in enumerate(trace):
        try:
            successor = apply_event(protocol, state, event)
        except (KeyError, Exception) as exc:  # noqa: BLE001 - report, don't mask
            if isinstance(exc, KeyError):
                failed_at = index
                break
            raise
        if successor is None:
            # An internal no-op: harmless, state unchanged.
            executed += 1
            continue
        state = successor
        executed += 1
    violates = None
    if invariant is not None:
        violates = not invariant.check(state.system)
    return ReplayOutcome(
        executed=executed,
        failed_at=failed_at,
        final_system=state.system,
        violates=violates,
    )


def validate_bug(
    protocol: Protocol, bug: BugReport, invariant: Invariant
) -> ReplayOutcome:
    """Audit a checker's bug report end to end.

    Replays the report's witness trace from its initial state and evaluates
    the invariant on the outcome.  A sound report yields a complete replay
    whose final state violates the invariant.
    """
    return replay_trace(protocol, bug.initial_state, bug.trace, invariant)


def trace_to_script(bug: BugReport) -> List[str]:
    """Render a bug's witness as a copy-pasteable regression comment block."""
    lines = [
        "# regression witness — replay with repro.replay.replay_trace",
        f"# violation: {bug.description}",
    ]
    lines.extend(f"#   {line}" for line in bug.trace_lines())
    return lines
