"""Bug reports and checker results shared by both model checkers.

A confirmed bug always carries an executable *counterexample*: the sequence
of events that drives the system from the search's starting state into the
violating system state.  For the global checker the trace is the DFS path;
for LMC it is the valid total order that soundness verification discovered —
which is exactly why LMC's reports are sound (§4: "our reported bugs are
sound and this is ensured by keeping track of the events executed").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.model.events import Event
from repro.model.system_state import SystemState
from repro.stats.counters import ExplorationStats
from repro.stats.series import DepthSeries


@dataclass(frozen=True)
class BugReport:
    """A confirmed invariant violation.

    ``violating_state`` is the system state on which the invariant failed;
    ``trace`` is a witness event sequence from ``initial_state`` to it (a
    valid total order of events); ``description`` is the invariant's account
    of the violation; ``kind`` distinguishes invariant violations from local
    assertion failures surfaced by the global checker.
    """

    kind: str
    description: str
    violating_state: SystemState
    trace: Tuple[Event, ...]
    initial_state: SystemState

    def trace_lines(self) -> Tuple[str, ...]:
        """The witness trace rendered one event per line."""
        return tuple(
            f"{index:3d}. {event.describe()}" for index, event in enumerate(self.trace, 1)
        )

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"BUG ({self.kind}): {self.description}", "witness trace:"]
        lines.extend(self.trace_lines())
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Outcome of one checker run.

    ``completed`` is True when the search exhausted the reachable state space
    within its bounds (as opposed to stopping on a budget).  ``bugs`` lists
    confirmed violations in discovery order.  ``stats`` and ``series`` carry
    the measurements the benches consume.
    """

    algorithm: str
    completed: bool
    bugs: List[BugReport] = field(default_factory=list)
    stats: ExplorationStats = field(default_factory=ExplorationStats)
    series: Optional[DepthSeries] = None
    stop_reason: str = ""

    @property
    def found_bug(self) -> bool:
        """True when at least one confirmed bug was reported."""
        return bool(self.bugs)

    def first_bug(self) -> BugReport:
        """The first confirmed bug; raises if none was found."""
        if not self.bugs:
            raise LookupError(f"{self.algorithm}: no bug was found")
        return self.bugs[0]
