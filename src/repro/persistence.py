"""Serialization of bug reports: a regression corpus for found bugs.

Online model checking produces witnesses worth keeping: a bug found at
3 a.m. against a live system should become a permanent regression fixture.
This module round-trips :class:`~repro.reports.BugReport` objects through
plain JSON-compatible dictionaries.

Model values (states, payloads) are frozen dataclasses over a closed
vocabulary (primitives, tuples, frozensets, nested dataclasses), so they
serialize structurally with a class tag and deserialize through a
*registry* of allowed dataclasses — the protocol module(s) under test.
Deserialization never executes arbitrary content: unknown class tags are
an error, not an import.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterable, List, Optional, Tuple, Type

from repro.fsio import atomic_write_json
from repro.model.events import (
    CrashEvent,
    DeliveryEvent,
    DropEvent,
    DuplicateEvent,
    Event,
    InternalEvent,
    RestartEvent,
)
from repro.model.system_state import SystemState
from repro.model.types import Action, Message
from repro.reports import BugReport


class UnknownClassTag(ValueError):
    """A serialized value names a dataclass missing from the registry."""


# -- versioned envelopes ---------------------------------------------------------
#
# Every durable artifact this library writes — the bug corpus here, the
# checker checkpoints in :mod:`repro.core.checkpoint` — shares one envelope
# discipline: a ``format`` tag naming the artifact kind, an integer
# ``version``, and an atomic whole-file replace.  Factoring it keeps the
# loaders' refusal behaviour (wrong kind, wrong version) identical.


def save_envelope(
    path: str, kind: str, version: int, payload: Dict[str, Any], indent: Optional[int] = 2
) -> None:
    """Atomically write ``payload`` under a ``{format, version}`` envelope."""
    envelope = dict(payload)
    envelope["format"] = kind
    envelope["version"] = version
    atomic_write_json(path, envelope, indent=indent, sort_keys=True)


def load_envelope(path: str, kind: str, version: int) -> Dict[str, Any]:
    """Read an envelope written by :func:`save_envelope`, strictly.

    A mismatched kind or version raises ``ValueError`` — version-1 readers
    must refuse future formats loudly rather than misparse them.  Files
    from before the ``format`` tag existed (legacy bug corpora) carry no
    tag and are accepted on version alone.
    """
    with open(path) as handle:
        envelope = json.load(handle)
    if not isinstance(envelope, dict):
        raise ValueError(f"{path}: not a JSON object")
    found = envelope.get("format")
    if found is not None and found != kind:
        raise ValueError(f"{path}: expected a {kind!r} payload, found {found!r}")
    if envelope.get("version") != version:
        raise ValueError(
            f"unsupported {kind} version {envelope.get('version')!r} "
            f"(this reader understands version {version})"
        )
    return envelope


class ClassRegistry:
    """The closed set of dataclasses a corpus may contain.

    Build one from the protocol modules whose states and payloads appear in
    your reports: ``ClassRegistry.from_modules(repro.protocols.paxos.state,
    repro.protocols.paxos.messages)``.
    """

    def __init__(self, classes: Iterable[Type] = ()):
        self._by_tag: Dict[str, Type] = {}
        for cls in classes:
            self.add(cls)

    def add(self, cls: Type) -> None:
        """Register one frozen dataclass."""
        if not dataclasses.is_dataclass(cls):
            raise TypeError(f"{cls!r} is not a dataclass")
        self._by_tag[cls.__qualname__] = cls

    @classmethod
    def from_modules(cls, *modules) -> "ClassRegistry":
        """Register every dataclass defined in the given modules."""
        registry = cls()
        for module in modules:
            for name in dir(module):
                obj = getattr(module, name)
                if (
                    isinstance(obj, type)
                    and dataclasses.is_dataclass(obj)
                    and obj.__module__ == module.__name__
                ):
                    registry.add(obj)
        return registry

    def resolve(self, tag: str) -> Type:
        """The dataclass registered under ``tag``."""
        try:
            return self._by_tag[tag]
        except KeyError:
            raise UnknownClassTag(f"class tag {tag!r} not in registry") from None


def registry_for_protocol(protocol: Any) -> ClassRegistry:
    """The class registry a protocol's states and payloads decode through.

    Packaged protocols (``repro.protocols.paxos.*``) keep their dataclasses
    in sibling modules (``state``, ``messages``), so the registry scans the
    defining module's whole package; flat protocols contribute just their
    own module.  :mod:`repro.model.types` is always included — crashed
    marker states and the message wrapper live there.  The set stays
    closed: only dataclasses *defined* in those modules resolve.
    """
    import importlib
    import pkgutil

    from repro.model import types as model_types

    module = importlib.import_module(type(protocol).__module__)
    modules = [module]
    if "." in module.__name__:
        package_name = module.__name__.rsplit(".", 1)[0]
        package = importlib.import_module(package_name)
        search_path = getattr(package, "__path__", None)
        if search_path is not None:
            modules.append(package)
            for info in pkgutil.iter_modules(search_path):
                modules.append(
                    importlib.import_module(f"{package_name}.{info.name}")
                )
    modules.append(model_types)
    seen = set()
    unique = []
    for candidate in modules:
        if candidate.__name__ not in seen:
            seen.add(candidate.__name__)
            unique.append(candidate)
    return ClassRegistry.from_modules(*unique)


# -- value encoding --------------------------------------------------------------


#: Per-class field-name cache for :func:`encode_value`.
#: ``dataclasses.fields`` re-derives the tuple on every call, and a
#: checkpoint snapshot encodes tens of thousands of dataclass instances
#: drawn from a handful of classes — the cache roughly halves encode time.
_FIELD_NAMES: Dict[type, Tuple[str, ...]] = {}


def _field_names(cls: type) -> Tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(field.name for field in dataclasses.fields(cls))
        _FIELD_NAMES[cls] = names
    return names


def encode_value(value: Any) -> Any:
    """Encode a model value into JSON-compatible structures."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"__float__": repr(value)}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(item) for item in value]}
    if isinstance(value, frozenset):
        from repro.model.hashing import canonical_bytes

        items = sorted(value, key=canonical_bytes)
        return {"__frozenset__": [encode_value(item) for item in items]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        fields = {
            name: encode_value(getattr(value, name))
            for name in _field_names(cls)
        }
        return {"__dataclass__": cls.__qualname__, "fields": fields}
    raise TypeError(f"cannot encode model value of type {type(value).__name__}")


def decode_value(encoded: Any, registry: ClassRegistry) -> Any:
    """Decode a value produced by :func:`encode_value`."""
    if encoded is None or isinstance(encoded, (bool, int, str)):
        return encoded
    if isinstance(encoded, dict):
        if "__float__" in encoded:
            return float(encoded["__float__"])
        if "__tuple__" in encoded:
            return tuple(
                decode_value(item, registry) for item in encoded["__tuple__"]
            )
        if "__frozenset__" in encoded:
            return frozenset(
                decode_value(item, registry) for item in encoded["__frozenset__"]
            )
        if "__dataclass__" in encoded:
            cls = registry.resolve(encoded["__dataclass__"])
            fields = {
                name: decode_value(item, registry)
                for name, item in encoded["fields"].items()
            }
            return cls(**fields)
    raise ValueError(f"malformed encoded value: {encoded!r}")


# -- events and states ---------------------------------------------------------------


def encode_event(event: Event) -> Dict[str, Any]:
    """Encode a delivery, internal or fault event."""
    if isinstance(event, DeliveryEvent):
        message = event.message
        return {
            "kind": "deliver",
            "dest": message.dest,
            "src": message.src,
            "payload": encode_value(message.payload),
        }
    if isinstance(event, InternalEvent):
        action = event.action
        return {
            "kind": "action",
            "node": action.node,
            "name": action.name,
            "payload": encode_value(action.payload),
        }
    if isinstance(event, CrashEvent):
        return {"kind": "crash", "node": event.node}
    if isinstance(event, RestartEvent):
        return {"kind": "restart", "node": event.node}
    if isinstance(event, DropEvent):
        message = event.message
        return {
            "kind": "drop",
            "dest": message.dest,
            "src": message.src,
            "payload": encode_value(message.payload),
        }
    if isinstance(event, DuplicateEvent):
        message = event.message
        return {
            "kind": "duplicate",
            "dest": message.dest,
            "src": message.src,
            "payload": encode_value(message.payload),
        }
    raise TypeError(f"unknown event type {type(event).__name__}")


def decode_event(encoded: Dict[str, Any], registry: ClassRegistry) -> Event:
    """Decode an event produced by :func:`encode_event`."""
    if encoded["kind"] == "deliver":
        return DeliveryEvent(
            Message(
                dest=encoded["dest"],
                src=encoded["src"],
                payload=decode_value(encoded["payload"], registry),
            )
        )
    if encoded["kind"] == "action":
        return InternalEvent(
            Action(
                node=encoded["node"],
                name=encoded["name"],
                payload=decode_value(encoded["payload"], registry),
            )
        )
    if encoded["kind"] == "crash":
        return CrashEvent(encoded["node"])
    if encoded["kind"] == "restart":
        return RestartEvent(encoded["node"])
    if encoded["kind"] in ("drop", "duplicate"):
        message = Message(
            dest=encoded["dest"],
            src=encoded["src"],
            payload=decode_value(encoded["payload"], registry),
        )
        return (
            DropEvent(message)
            if encoded["kind"] == "drop"
            else DuplicateEvent(message)
        )
    raise ValueError(f"unknown event kind {encoded.get('kind')!r}")


def encode_system_state(system: SystemState) -> List[Tuple[int, Any]]:
    """Encode a system state as ``[node, state]`` pairs."""
    return [[node, encode_value(state)] for node, state in system.items()]


def decode_system_state(
    encoded: List[Tuple[int, Any]], registry: ClassRegistry
) -> SystemState:
    """Decode a system state produced by :func:`encode_system_state`."""
    return SystemState(
        {node: decode_value(state, registry) for node, state in encoded}
    )


# -- bug reports ----------------------------------------------------------------------


def bug_to_dict(bug: BugReport) -> Dict[str, Any]:
    """Encode a bug report into a JSON-compatible dictionary."""
    return {
        "kind": bug.kind,
        "description": bug.description,
        "violating_state": encode_system_state(bug.violating_state),
        "initial_state": encode_system_state(bug.initial_state),
        "trace": [encode_event(event) for event in bug.trace],
    }


def bug_from_dict(data: Dict[str, Any], registry: ClassRegistry) -> BugReport:
    """Decode a bug report produced by :func:`bug_to_dict`."""
    return BugReport(
        kind=data["kind"],
        description=data["description"],
        violating_state=decode_system_state(data["violating_state"], registry),
        initial_state=decode_system_state(data["initial_state"], registry),
        trace=tuple(decode_event(item, registry) for item in data["trace"]),
    )


def save_bugs(path: str, bugs: Iterable[BugReport]) -> None:
    """Write a bug corpus to ``path`` as JSON, atomically.

    The corpus is a regression archive — a crash mid-dump must never
    truncate it.  Durability comes from the shared
    :func:`repro.fsio.atomic_write_json` helper (same-directory temp file,
    fsync, then :func:`os.replace` — atomic on POSIX within one
    filesystem): readers see either the complete old corpus or the complete
    new one, never a prefix.
    """
    save_envelope(
        path, "bug-corpus", 1, {"bugs": [bug_to_dict(bug) for bug in bugs]}
    )


def load_bugs(path: str, registry: ClassRegistry) -> List[BugReport]:
    """Read a bug corpus written by :func:`save_bugs`."""
    payload = load_envelope(path, "bug-corpus", 1)
    return [bug_from_dict(item, registry) for item in payload["bugs"]]
